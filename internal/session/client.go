package session

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/fabric"
)

// Client is a session participant endpoint. It claims its endpoint's
// handler at construction; the On* callbacks run outside the internal lock
// and may call back into the client.
type Client struct {
	ep   fabric.Endpoint
	host string
	doc  string // document key; "" is the unnamed session

	mu       sync.Mutex
	cbs      []func()
	flushing bool

	joined  bool
	mode    Mode
	lastSeq uint64

	// OnItem receives session items (pushed or polled), in order.
	OnItem func(it Item)
	// OnMode observes session mode switches.
	OnMode func(m Mode)
	// OnPresence observes other participants' presence changes.
	OnPresence func(user string, p Presence)
	// OnJoined fires when the join acknowledgement (with backlog) arrives.
	OnJoined func(mode Mode, members []string)
}

// NewClient creates a client on the given endpoint that will talk to the
// named host, claiming the endpoint's handler.
func NewClient(ep fabric.Endpoint, host string) *Client {
	return NewClientForDoc(ep, host, "")
}

// NewClientForDoc creates a client bound to one named document on a
// (possibly multi-document) host. Outgoing messages are stamped with doc;
// incoming messages stamped for other documents are ignored, so several
// documents can share a host endpoint without cross-talk.
func NewClientForDoc(ep fabric.Endpoint, host, doc string) *Client {
	c := &Client{ep: ep, host: host, doc: doc, mode: Synchronous}
	ep.SetHandler(func(from string, payload any, size int) {
		c.Receive(from, payload)
	})
	return c
}

// Doc returns the document key this client is bound to.
func (c *Client) Doc() string { return c.doc }

// runCallbacks is called with c.mu held and returns with it released; see
// group.Member.runCallbacks for the pattern.
func (c *Client) runCallbacks() {
	if c.flushing {
		c.mu.Unlock()
		return
	}
	c.flushing = true
	for len(c.cbs) > 0 {
		batch := c.cbs
		c.cbs = nil
		c.mu.Unlock()
		for _, fn := range batch {
			fn()
		}
		c.mu.Lock()
	}
	c.flushing = false
	c.mu.Unlock()
}

// ID returns the client's identifier.
func (c *Client) ID() string { return c.ep.ID() }

// Joined reports whether the join handshake completed.
func (c *Client) Joined() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.joined
}

// Mode returns the last known session mode.
func (c *Client) Mode() Mode {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mode
}

// LastSeq returns the highest item sequence number seen.
func (c *Client) LastSeq() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastSeq
}

// Join requests (re)admission, asking for replay of anything after the last
// item this client saw.
func (c *Client) Join(now time.Duration) error {
	if c.host == "" {
		return ErrNoHost
	}
	c.mu.Lock()
	since := c.lastSeq
	c.mu.Unlock()
	return c.ep.Send(c.host, &MsgJoin{Doc: c.doc, From: c.ID(), Since: since, State: Active}, 64)
}

// Post submits an item to the session.
func (c *Client) Post(kind, body string, now time.Duration) error {
	if !c.Joined() {
		return fmt.Errorf("%w: %s", ErrNotJoined, c.ID())
	}
	return c.ep.Send(c.host, &MsgPost{Doc: c.doc, From: c.ID(), Kind: kind, Body: body}, len(body)+64)
}

// Poll fetches items posted since the client last saw one (the
// asynchronous-mode pull path).
func (c *Client) Poll(now time.Duration) error {
	c.mu.Lock()
	joined, since := c.joined, c.lastSeq
	c.mu.Unlock()
	if !joined {
		return fmt.Errorf("%w: %s", ErrNotJoined, c.ID())
	}
	return c.ep.Send(c.host, &MsgPoll{Doc: c.doc, From: c.ID(), Since: since}, 64)
}

// SetPresence announces a presence change.
func (c *Client) SetPresence(p Presence, now time.Duration) error {
	if !c.Joined() {
		return fmt.Errorf("%w: %s", ErrNotJoined, c.ID())
	}
	return c.ep.Send(c.host, &MsgPresence{Doc: c.doc, From: c.ID(), State: p}, 64)
}

// Leave departs the session (items continue to queue server-side and replay
// on rejoin).
func (c *Client) Leave(now time.Duration) error {
	c.mu.Lock()
	if !c.joined {
		c.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNotJoined, c.ID())
	}
	c.joined = false
	c.mu.Unlock()
	return c.ep.Send(c.host, &MsgLeave{Doc: c.doc, From: c.ID()}, 64)
}

// Receive ingests a wire message. NewClient wires the endpoint's handler
// here; tests may call it directly.
func (c *Client) Receive(from string, payload any) {
	// Unstamped traffic (a single-session host) is accepted for
	// compatibility; traffic stamped for another document is not ours.
	if c.doc != "" {
		if d := DocOf(payload); d != "" && d != c.doc {
			return
		}
	}
	c.mu.Lock()
	switch m := payload.(type) {
	case *MsgJoinAck:
		c.onJoinAck(*m)
	case MsgJoinAck:
		c.onJoinAck(m)
	case *MsgItems:
		c.onItems(*m)
	case MsgItems:
		c.onItems(m)
	case *MsgMode:
		c.onMode(*m)
	case MsgMode:
		c.onMode(m)
	case *MsgPresence:
		c.onPresenceMsg(*m)
	case MsgPresence:
		c.onPresenceMsg(m)
	}
	c.runCallbacks()
}

func (c *Client) onMode(m MsgMode) {
	c.mode = m.Mode
	if c.OnMode != nil {
		onMode := c.OnMode
		c.cbs = append(c.cbs, func() { onMode(m.Mode) })
	}
}

func (c *Client) onPresenceMsg(m MsgPresence) {
	if c.OnPresence != nil {
		onPresence := c.OnPresence
		c.cbs = append(c.cbs, func() { onPresence(m.From, m.State) })
	}
}

func (c *Client) onJoinAck(m MsgJoinAck) {
	c.joined = true
	c.mode = m.Mode
	if c.OnJoined != nil {
		onJoined := c.OnJoined
		c.cbs = append(c.cbs, func() { onJoined(m.Mode, m.Members) })
	}
	c.deliver(m.Backlog)
}

func (c *Client) onItems(m MsgItems) {
	c.deliver(m.Items)
}

func (c *Client) deliver(items []Item) {
	for _, it := range items {
		if it.Seq <= c.lastSeq {
			continue // duplicate (e.g. rejoin replay racing a push)
		}
		c.lastSeq = it.Seq
		if c.OnItem != nil {
			onItem := c.OnItem
			item := it
			c.cbs = append(c.cbs, func() { onItem(item) })
		}
	}
}
