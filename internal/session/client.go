package session

import (
	"fmt"
	"time"
)

// Client is a session participant endpoint. Wire its transport handler to
// Receive.
type Client struct {
	conduit Conduit
	host    string
	joined  bool
	mode    Mode
	lastSeq uint64

	// OnItem receives session items (pushed or polled), in order.
	OnItem func(it Item)
	// OnMode observes session mode switches.
	OnMode func(m Mode)
	// OnPresence observes other participants' presence changes.
	OnPresence func(user string, p Presence)
	// OnJoined fires when the join acknowledgement (with backlog) arrives.
	OnJoined func(mode Mode, members []string)
}

// NewClient creates a client that will talk to the named host.
func NewClient(conduit Conduit, host string) *Client {
	return &Client{conduit: conduit, host: host, mode: Synchronous}
}

// ID returns the client's identifier.
func (c *Client) ID() string { return c.conduit.ID() }

// Joined reports whether the join handshake completed.
func (c *Client) Joined() bool { return c.joined }

// Mode returns the last known session mode.
func (c *Client) Mode() Mode { return c.mode }

// LastSeq returns the highest item sequence number seen.
func (c *Client) LastSeq() uint64 { return c.lastSeq }

// Join requests (re)admission, asking for replay of anything after the last
// item this client saw.
func (c *Client) Join(now time.Duration) error {
	if c.host == "" {
		return ErrNoHost
	}
	return c.conduit.Send(c.host, &MsgJoin{From: c.ID(), Since: c.lastSeq, State: Active}, 64)
}

// Post submits an item to the session.
func (c *Client) Post(kind, body string, now time.Duration) error {
	if !c.joined {
		return fmt.Errorf("%w: %s", ErrNotJoined, c.ID())
	}
	return c.conduit.Send(c.host, &MsgPost{From: c.ID(), Kind: kind, Body: body}, len(body)+64)
}

// Poll fetches items posted since the client last saw one (the
// asynchronous-mode pull path).
func (c *Client) Poll(now time.Duration) error {
	if !c.joined {
		return fmt.Errorf("%w: %s", ErrNotJoined, c.ID())
	}
	return c.conduit.Send(c.host, &MsgPoll{From: c.ID(), Since: c.lastSeq}, 64)
}

// SetPresence announces a presence change.
func (c *Client) SetPresence(p Presence, now time.Duration) error {
	if !c.joined {
		return fmt.Errorf("%w: %s", ErrNotJoined, c.ID())
	}
	return c.conduit.Send(c.host, &MsgPresence{From: c.ID(), State: p}, 64)
}

// Leave departs the session (items continue to queue server-side and replay
// on rejoin).
func (c *Client) Leave(now time.Duration) error {
	if !c.joined {
		return fmt.Errorf("%w: %s", ErrNotJoined, c.ID())
	}
	c.joined = false
	return c.conduit.Send(c.host, &MsgLeave{From: c.ID()}, 64)
}

// Receive ingests a wire message from the transport.
func (c *Client) Receive(from string, payload any) {
	switch m := payload.(type) {
	case *MsgJoinAck:
		c.onJoinAck(*m)
	case MsgJoinAck:
		c.onJoinAck(m)
	case *MsgItems:
		c.onItems(*m)
	case MsgItems:
		c.onItems(m)
	case *MsgMode:
		c.mode = m.Mode
		if c.OnMode != nil {
			c.OnMode(m.Mode)
		}
	case MsgMode:
		c.mode = m.Mode
		if c.OnMode != nil {
			c.OnMode(m.Mode)
		}
	case *MsgPresence:
		if c.OnPresence != nil {
			c.OnPresence(m.From, m.State)
		}
	case MsgPresence:
		if c.OnPresence != nil {
			c.OnPresence(m.From, m.State)
		}
	}
}

func (c *Client) onJoinAck(m MsgJoinAck) {
	c.joined = true
	c.mode = m.Mode
	if c.OnJoined != nil {
		c.OnJoined(m.Mode, m.Members)
	}
	c.deliver(m.Backlog)
}

func (c *Client) onItems(m MsgItems) {
	c.deliver(m.Items)
}

func (c *Client) deliver(items []Item) {
	for _, it := range items {
		if it.Seq <= c.lastSeq {
			continue // duplicate (e.g. rejoin replay racing a push)
		}
		c.lastSeq = it.Seq
		if c.OnItem != nil {
			c.OnItem(it)
		}
	}
}
