package session

import (
	"errors"
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/netsim"
)

// Accessor and pointer-vs-value Receive paths not exercised by the main
// scenario tests.

func TestAccessors(t *testing.T) {
	r := newRig(t, 1, Asynchronous, netsim.LANLink)
	if r.host.Mode() != Asynchronous {
		t.Errorf("host mode = %v", r.host.Mode())
	}
	c := r.clients["u00"]
	if c.Mode() != Synchronous {
		t.Errorf("client default mode = %v", c.Mode())
	}
	r.joinAll(t)
	if c.Mode() != Asynchronous {
		t.Errorf("client mode after join = %v", c.Mode())
	}
	if c.LastSeq() != 0 {
		t.Errorf("LastSeq = %d", c.LastSeq())
	}
	c.Post("k", "b", 0)
	r.sim.Run()
	c.Poll(0)
	r.sim.Run()
	// Own items are filtered but acked server-side; LastSeq stays 0 until
	// someone else posts.
	if c.LastSeq() != 0 {
		t.Errorf("LastSeq after own post = %d", c.LastSeq())
	}
}

func TestJoinWithoutHost(t *testing.T) {
	hub := netsim.New(1, netsim.LANLink)
	node := hub.MustAddNode("x")
	c := NewClient(fabric.FromSim(node), "")
	if err := c.Join(0); !errors.Is(err, ErrNoHost) {
		t.Errorf("Join = %v", err)
	}
}

func TestReceiveValueVariants(t *testing.T) {
	// Host and Client accept both pointer and value message forms (netsim
	// passes pointers; decoded JSON arrives as pointers too, but value
	// forms are part of the contract).
	sim := netsim.New(1, netsim.LANLink)
	hostNode := sim.MustAddNode("host")
	h := NewHost(fabric.FromSim(hostNode), Synchronous, sim.Now)

	h.Receive("u1", MsgJoin{From: "u1", State: Active})
	sim.Run()
	if h.PresenceOf("u1") != Active {
		t.Fatalf("presence = %v", h.PresenceOf("u1"))
	}
	h.Receive("u1", MsgPost{From: "u1", Kind: "k", Body: "v"})
	if h.LogLen() != 1 {
		t.Fatalf("log = %d", h.LogLen())
	}
	h.Receive("u1", MsgPoll{From: "u1", Since: 0})
	h.Receive("u1", MsgPresence{From: "u1", State: Away})
	if h.PresenceOf("u1") != Away {
		t.Errorf("presence = %v", h.PresenceOf("u1"))
	}
	h.Receive("u1", MsgLeave{From: "u1"})
	if h.PresenceOf("u1") != Offline {
		t.Errorf("presence = %v", h.PresenceOf("u1"))
	}
	if h.PresenceOf("never-joined") != Offline {
		t.Errorf("unknown presence = %v", h.PresenceOf("never-joined"))
	}

	cNode := sim.MustAddNode("c")
	c := NewClient(fabric.FromSim(cNode), "host")
	var modes []Mode
	var presences []string
	c.OnMode = func(m Mode) { modes = append(modes, m) }
	c.OnPresence = func(u string, p Presence) { presences = append(presences, u) }
	c.Receive("host", MsgJoinAck{Mode: Asynchronous})
	if !c.Joined() || c.Mode() != Asynchronous {
		t.Error("value JoinAck not processed")
	}
	c.Receive("host", MsgItems{Items: []Item{{Seq: 1, From: "x", Body: "b"}}})
	if c.LastSeq() != 1 {
		t.Errorf("LastSeq = %d", c.LastSeq())
	}
	c.Receive("host", MsgMode{Mode: Synchronous})
	c.Receive("host", MsgPresence{From: "x", State: Away})
	if len(modes) != 1 || modes[0] != Synchronous {
		t.Errorf("modes = %v", modes)
	}
	if len(presences) != 1 || presences[0] != "x" {
		t.Errorf("presences = %v", presences)
	}
}

func TestSetPresenceBeforeJoin(t *testing.T) {
	sim := netsim.New(1, netsim.LANLink)
	node := sim.MustAddNode("x")
	c := NewClient(fabric.FromSim(node), "host")
	if err := c.SetPresence(Away, 0); !errors.Is(err, ErrNotJoined) {
		t.Errorf("SetPresence = %v", err)
	}
}

func TestSetModeNoopAndSyncToAsync(t *testing.T) {
	r := newRig(t, 2, Synchronous, netsim.LANLink)
	r.joinAll(t)
	st := r.host.Stats()
	r.host.SetMode(Synchronous) // no-op
	if r.host.Stats().ModeSwitches != st.ModeSwitches {
		t.Error("same-mode switch counted")
	}
	r.host.SetMode(Asynchronous) // no flush on downgrade
	r.sim.Run()
	if r.host.Stats().FlushServes != 0 {
		t.Error("sync->async should not flush")
	}
	if r.clients["u00"].Mode() != Asynchronous {
		t.Errorf("client mode = %v", r.clients["u00"].Mode())
	}
}

func TestModeSwitchFlushSkipsCaughtUp(t *testing.T) {
	r := newRig(t, 2, Asynchronous, netsim.LANLink)
	r.joinAll(t)
	r.clients["u00"].Post("k", "x", 0)
	r.sim.Run()
	// u01 polls so it is fully caught up before the switch.
	r.clients["u01"].Poll(time.Millisecond)
	r.sim.Run()
	n := len(r.items["u01"])
	r.host.SetMode(Synchronous)
	r.sim.Run()
	if len(r.items["u01"]) != n {
		t.Error("caught-up participant received duplicate flush items")
	}
}
