package session

import (
	"sync"
	"testing"
	"time"

	"repro/internal/transport"
)

// TestSessionOverRealTCP is the cmd/sessiond + cmd/cscwctl path end to end:
// a host and two clients on real loopback sockets, JSON frames, pushes both
// ways.
func TestSessionOverRealTCP(t *testing.T) {
	book := transport.NewAddressBook()
	hostEP, err := transport.ListenTCP("host", "127.0.0.1:0", book)
	if err != nil {
		t.Fatal(err)
	}
	defer hostEP.Close()

	var mu sync.Mutex
	start := time.Now()
	host := NewHost(NewEndpointConduit(hostEP), Synchronous, func() time.Duration { return time.Since(start) })
	hostEP.SetHandler(func(from string, data []byte) {
		payload, err := DecodePayload(data)
		if err != nil || payload == nil {
			return
		}
		mu.Lock()
		defer mu.Unlock()
		host.Receive(from, payload)
	})

	type clientRig struct {
		ep    *transport.TCPEndpoint
		cli   *Client
		items chan Item
	}
	mkClient := func(name string) *clientRig {
		t.Helper()
		ep, err := transport.ListenTCP(name, "127.0.0.1:0", book)
		if err != nil {
			t.Fatal(err)
		}
		r := &clientRig{ep: ep, items: make(chan Item, 16)}
		r.cli = NewClient(NewEndpointConduit(ep), "host")
		joined := make(chan struct{})
		r.cli.OnJoined = func(Mode, []string) { close(joined) }
		r.cli.OnItem = func(it Item) { r.items <- it }
		ep.SetHandler(func(from string, data []byte) {
			payload, err := DecodePayload(data)
			if err != nil || payload == nil {
				return
			}
			mu.Lock()
			defer mu.Unlock()
			r.cli.Receive(from, payload)
		})
		mu.Lock()
		err = r.cli.Join(0)
		mu.Unlock()
		if err != nil {
			t.Fatal(err)
		}
		select {
		case <-joined:
		case <-time.After(5 * time.Second):
			t.Fatalf("%s join timeout", name)
		}
		return r
	}

	alice := mkClient("alice")
	defer alice.ep.Close()
	bob := mkClient("bob")
	defer bob.ep.Close()

	mu.Lock()
	err = alice.cli.Post("chat", "over real sockets", 0)
	mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	select {
	case it := <-bob.items:
		if it.From != "alice" || it.Body != "over real sockets" {
			t.Errorf("item = %+v", it)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("bob never received the push")
	}
	// Nothing echoes back to alice.
	select {
	case it := <-alice.items:
		t.Errorf("alice got an echo: %+v", it)
	case <-time.After(100 * time.Millisecond):
	}
}
