package session

import (
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/transport"
)

// TestSessionOverRealTCP is the cmd/sessiond + cmd/cscwctl path end to end:
// a host and two clients on real loopback sockets, JSON frames, pushes both
// ways.
func TestSessionOverRealTCP(t *testing.T) {
	book := transport.NewAddressBook()
	hostTCP, err := transport.ListenTCP("host", "127.0.0.1:0", book)
	if err != nil {
		t.Fatal(err)
	}
	hostEP := fabric.FromTransport(hostTCP, NewWireCodec())
	defer hostEP.Close()

	start := time.Now()
	NewHost(hostEP, Synchronous, func() time.Duration { return time.Since(start) })

	type clientRig struct {
		ep    *fabric.TransportEndpoint
		cli   *Client
		items chan Item
	}
	mkClient := func(name string) *clientRig {
		t.Helper()
		tcp, err := transport.ListenTCP(name, "127.0.0.1:0", book)
		if err != nil {
			t.Fatal(err)
		}
		r := &clientRig{ep: fabric.FromTransport(tcp, NewWireCodec()), items: make(chan Item, 16)}
		r.cli = NewClient(r.ep, "host")
		joined := make(chan struct{})
		r.cli.OnJoined = func(Mode, []string) { close(joined) }
		r.cli.OnItem = func(it Item) { r.items <- it }
		if err := r.cli.Join(0); err != nil {
			t.Fatal(err)
		}
		select {
		case <-joined:
		case <-time.After(5 * time.Second):
			t.Fatalf("%s join timeout", name)
		}
		return r
	}

	alice := mkClient("alice")
	defer alice.ep.Close()
	bob := mkClient("bob")
	defer bob.ep.Close()

	if err := alice.cli.Post("chat", "over real sockets", 0); err != nil {
		t.Fatal(err)
	}
	select {
	case it := <-bob.items:
		if it.From != "alice" || it.Body != "over real sockets" {
			t.Errorf("item = %+v", it)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("bob never received the push")
	}
	// Nothing echoes back to alice.
	select {
	case it := <-alice.items:
		t.Errorf("alice got an echo: %+v", it)
	case <-time.After(100 * time.Millisecond):
	}
}
