package session

import (
	"sync"
	"testing"
	"time"

	"repro/internal/transport"
)

// TestSessionOverHub runs a real host and client over the in-memory
// transport with JSON wire encoding — the same path cmd/sessiond uses over
// TCP.
func TestSessionOverHub(t *testing.T) {
	hub := transport.NewHub()
	hostEP := hub.MustAttach("host")
	cliEP := hub.MustAttach("alice")
	defer hostEP.Close()
	defer cliEP.Close()

	var mu sync.Mutex
	start := time.Now()
	clock := func() time.Duration { return time.Since(start) }
	host := NewHost(NewEndpointConduit(hostEP), Synchronous, clock)
	hostEP.SetHandler(func(from string, data []byte) {
		payload, err := DecodePayload(data)
		if err != nil || payload == nil {
			return
		}
		mu.Lock()
		defer mu.Unlock()
		host.Receive(from, payload)
	})

	var items []Item
	joined := make(chan struct{})
	cli := NewClient(NewEndpointConduit(cliEP), "host")
	cli.OnJoined = func(Mode, []string) { close(joined) }
	// OnItem runs inside the endpoint handler, which already holds mu — it
	// must not lock mu itself.
	cli.OnItem = func(it Item) {
		items = append(items, it)
	}
	cliEP.SetHandler(func(from string, data []byte) {
		payload, err := DecodePayload(data)
		if err != nil || payload == nil {
			return
		}
		mu.Lock()
		cli.Receive(from, payload)
		mu.Unlock()
	})

	if err := cli.Join(0); err != nil {
		t.Fatal(err)
	}
	select {
	case <-joined:
	case <-time.After(5 * time.Second):
		t.Fatal("join timeout")
	}

	// A second participant posts; alice receives the JSON-decoded item.
	bobEP := hub.MustAttach("bob")
	defer bobEP.Close()
	bob := NewClient(NewEndpointConduit(bobEP), "host")
	bobJoined := make(chan struct{})
	bob.OnJoined = func(Mode, []string) { close(bobJoined) }
	bobEP.SetHandler(func(from string, data []byte) {
		payload, err := DecodePayload(data)
		if err != nil || payload == nil {
			return
		}
		mu.Lock()
		bob.Receive(from, payload)
		mu.Unlock()
	})
	if err := bob.Join(0); err != nil {
		t.Fatal(err)
	}
	<-bobJoined
	mu.Lock()
	err := bob.Post("chat", "hello over the wire", 0)
	mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(items)
		mu.Unlock()
		if n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("item never arrived")
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if items[0].Body != "hello over the wire" || items[0].From != "bob" {
		t.Errorf("item = %+v", items[0])
	}
}

func TestDecodePayloadUnknownAndGarbage(t *testing.T) {
	if _, err := DecodePayload([]byte("{broken")); err == nil {
		t.Error("garbage should error")
	}
	data, _ := transport.Marshal("other/tag", map[string]int{"x": 1})
	payload, err := DecodePayload(data)
	if err != nil || payload != nil {
		t.Errorf("unknown tag = %v, %v; want nil, nil", payload, err)
	}
}

func TestEndpointConduitRejectsForeignPayload(t *testing.T) {
	hub := transport.NewHub()
	ep := hub.MustAttach("x")
	defer ep.Close()
	c := NewEndpointConduit(ep)
	if err := c.Send("x", 42, 0); err == nil {
		t.Error("non-session payload should be rejected")
	}
}
