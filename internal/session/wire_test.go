package session

import (
	"sync"
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/transport"
)

// TestSessionOverHub runs a real host and client over the in-memory
// transport with JSON wire encoding — the same path cmd/sessiond uses over
// TCP. Host and Client self-synchronize; the test only guards its own
// slices.
func TestSessionOverHub(t *testing.T) {
	hub := transport.NewHub()
	hostEP := fabric.FromTransport(hub.MustAttach("host"), NewWireCodec())
	cliEP := fabric.FromTransport(hub.MustAttach("alice"), NewWireCodec())
	defer hostEP.Close()
	defer cliEP.Close()

	start := time.Now()
	clock := func() time.Duration { return time.Since(start) }
	NewHost(hostEP, Synchronous, clock)

	var mu sync.Mutex
	var items []Item
	joined := make(chan struct{})
	cli := NewClient(cliEP, "host")
	cli.OnJoined = func(Mode, []string) { close(joined) }
	cli.OnItem = func(it Item) {
		mu.Lock()
		items = append(items, it)
		mu.Unlock()
	}

	if err := cli.Join(0); err != nil {
		t.Fatal(err)
	}
	select {
	case <-joined:
	case <-time.After(5 * time.Second):
		t.Fatal("join timeout")
	}

	// A second participant posts; alice receives the JSON-decoded item.
	bobEP := fabric.FromTransport(hub.MustAttach("bob"), NewWireCodec())
	defer bobEP.Close()
	bob := NewClient(bobEP, "host")
	bobJoined := make(chan struct{})
	bob.OnJoined = func(Mode, []string) { close(bobJoined) }
	if err := bob.Join(0); err != nil {
		t.Fatal(err)
	}
	<-bobJoined
	if err := bob.Post("chat", "hello over the wire", 0); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(items)
		mu.Unlock()
		if n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("item never arrived")
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if items[0].Body != "hello over the wire" || items[0].From != "bob" {
		t.Errorf("item = %+v", items[0])
	}
}

func TestWireCodecUnknownAndGarbage(t *testing.T) {
	c := NewWireCodec()
	if _, err := c.Decode([]byte("{broken")); err == nil {
		t.Error("garbage should error")
	}
	data, _ := fabric.Marshal("other/tag", map[string]int{"x": 1})
	payload, err := c.Decode(data)
	if err != nil || payload != nil {
		t.Errorf("unknown tag = %v, %v; want nil, nil", payload, err)
	}
}

func TestWireEndpointRejectsForeignPayload(t *testing.T) {
	hub := transport.NewHub()
	ep := fabric.FromTransport(hub.MustAttach("x"), NewWireCodec())
	defer ep.Close()
	if err := ep.Send("x", 42, 0); err == nil {
		t.Error("non-session payload should be rejected")
	}
}

func TestWireCodecRoundTripsEveryMessage(t *testing.T) {
	c := NewWireCodec()
	msgs := []any{
		&MsgJoin{From: "a", Since: 2, State: Away},
		&MsgJoinAck{Mode: Asynchronous, Backlog: []Item{{Seq: 1, From: "b", Kind: "chat", Body: "x"}}, Members: []string{"a", "b"}},
		&MsgPost{From: "a", Kind: "edit", Body: "insert"},
		&MsgItems{Items: []Item{{Seq: 2, From: "a"}}},
		&MsgPoll{From: "a", Since: 1},
		&MsgMode{Mode: Synchronous},
		&MsgPresence{From: "a", State: Active},
		&MsgLeave{From: "a"},
	}
	for _, m := range msgs {
		data, err := c.Encode(m)
		if err != nil {
			t.Fatalf("encode %T: %v", m, err)
		}
		got, err := c.Decode(data)
		if err != nil || got == nil {
			t.Fatalf("decode %T: %v, %v", m, got, err)
		}
	}
}
