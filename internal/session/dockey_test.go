package session

import (
	"testing"

	"repro/internal/fabric"
	"repro/internal/netsim"
)

type keyed struct{ doc string }

func (k keyed) DocKey() string { return k.doc }

func TestDocOfDocKeyedFallthrough(t *testing.T) {
	if got := DocOf(keyed{"d9"}); got != "d9" {
		t.Fatalf("DocKeyed payload demuxed to %q", got)
	}
	if got := DocOf(struct{}{}); got != "" {
		t.Fatalf("unkeyed payload demuxed to %q", got)
	}
	// Session's own types still resolve through the typed switch.
	if got := DocOf(MsgPost{Doc: "p"}); got != "p" {
		t.Fatalf("session payload demuxed to %q", got)
	}
}

func TestHostIgnoresForeignKeyedTraffic(t *testing.T) {
	sim := netsim.New(1, netsim.LocalLink)
	h := NewDocHost(fabric.FromSim(sim.MustAddNode("h")), Synchronous, sim.Now, "mine")
	h.Receive("x", keyed{"other"}) // other document: filtered by the doc gate
	h.Receive("x", keyed{"mine"})  // right document, foreign type: ignored
	if h.LogLen() != 0 || len(h.Members()) != 0 {
		t.Fatalf("foreign traffic mutated host state: log %d members %d", h.LogLen(), len(h.Members()))
	}
}

func TestPostLocalReachesEveryParticipant(t *testing.T) {
	sim := netsim.New(2, netsim.LocalLink)
	h := NewHost(fabric.FromSim(sim.MustAddNode("host")), Synchronous, sim.Now)
	got := map[string]int{}
	for _, id := range []string{"a", "b"} {
		id := id
		c := NewClient(fabric.FromSim(sim.MustAddNode(id)), "host")
		c.OnItem = func(it Item) {
			if it.From != HostAuthor || it.Kind != "eng/op" {
				t.Errorf("unexpected item %+v at %s", it, id)
			}
			got[id]++
		}
		if err := c.Join(0); err != nil {
			t.Fatal(err)
		}
	}
	sim.Run()
	h.PostLocal("eng/op", "payload")
	sim.Run()
	if got["a"] != 1 || got["b"] != 1 {
		t.Fatalf("host item fanout %v", got)
	}
	// A late joiner replays host items from the backlog.
	late := NewClient(fabric.FromSim(sim.MustAddNode("late")), "host")
	late.OnItem = func(it Item) { got["late"]++ }
	if err := late.Join(0); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	if got["late"] != 1 {
		t.Fatalf("late joiner saw %d host items", got["late"])
	}
}
