package session

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/netsim"
)

// TestMultiHostDemux: two documents share one host endpoint; items never
// cross documents, and the OnItem observer sees each post under its key.
func TestMultiHostDemux(t *testing.T) {
	sim := netsim.New(1, netsim.LANLink)
	mh := NewMultiHost(fabric.FromSim(sim.MustAddNode("host")), Synchronous, sim.Now, nil)
	seen := make(map[string][]string)
	mh.OnItem = func(doc string, it Item) { seen[doc] = append(seen[doc], it.Body) }

	items := make(map[string][]Item)
	mkClient := func(id, doc string) *Client {
		c := NewClientForDoc(fabric.FromSim(sim.MustAddNode(id)), "host", doc)
		c.OnItem = func(it Item) { items[id] = append(items[id], it) }
		return c
	}
	a1, a2 := mkClient("a1", "docA"), mkClient("a2", "docA")
	b1, b2 := mkClient("b1", "docB"), mkClient("b2", "docB")
	for _, c := range []*Client{a1, a2, b1, b2} {
		if err := c.Join(sim.Now()); err != nil {
			t.Fatal(err)
		}
	}
	sim.Run()
	for _, c := range []*Client{a1, a2, b1, b2} {
		if !c.Joined() {
			t.Fatalf("%s failed to join", c.ID())
		}
	}
	sim.At(time.Millisecond, func() {
		_ = a1.Post("edit", "alpha", sim.Now())
		_ = b1.Post("edit", "beta", sim.Now())
	})
	sim.Run()

	if got := fmt.Sprint(mh.Docs()); got != "[docA docB]" {
		t.Fatalf("Docs() = %s", got)
	}
	if len(items["a2"]) != 1 || items["a2"][0].Body != "alpha" {
		t.Fatalf("a2 items = %v, want [alpha]", items["a2"])
	}
	if len(items["b2"]) != 1 || items["b2"][0].Body != "beta" {
		t.Fatalf("b2 items = %v, want [beta]", items["b2"])
	}
	// Cross-document leakage: a docA client must never see docB's item.
	for _, id := range []string{"a1", "a2"} {
		for _, it := range items[id] {
			if it.Body == "beta" {
				t.Fatalf("%s saw docB traffic", id)
			}
		}
	}
	if fmt.Sprint(seen["docA"]) != "[alpha]" || fmt.Sprint(seen["docB"]) != "[beta]" {
		t.Fatalf("OnItem saw %v", seen)
	}
	// Each document has its own sequence space, both starting at 1.
	if items["a2"][0].Seq != 1 || items["b2"][0].Seq != 1 {
		t.Fatalf("per-doc sequences not independent: a=%d b=%d", items["a2"][0].Seq, items["b2"][0].Seq)
	}
}

// TestMultiHostJoinOnlyCreation: a post for an unknown document must not
// allocate host state — only joins open documents.
func TestMultiHostJoinOnlyCreation(t *testing.T) {
	sim := netsim.New(1, netsim.LANLink)
	mh := NewMultiHost(fabric.FromSim(sim.MustAddNode("host")), Synchronous, sim.Now, nil)
	stranger := fabric.FromSim(sim.MustAddNode("s"))
	_ = stranger.Send("host", &MsgPost{Doc: "ghost", From: "s", Kind: "edit", Body: "x"}, 64)
	sim.Run()
	if h := mh.Host("ghost"); h != nil {
		t.Fatal("post from a stranger allocated a document host")
	}
	if len(mh.Docs()) != 0 {
		t.Fatalf("Docs() = %v, want empty", mh.Docs())
	}
}

// TestMultiHostOwns: a sharded host drops (and counts) traffic for
// documents another shard owns, instead of forking their logs.
func TestMultiHostOwns(t *testing.T) {
	sim := netsim.New(1, netsim.LANLink)
	mh := NewMultiHost(fabric.FromSim(sim.MustAddNode("host")), Synchronous, sim.Now,
		func(doc string) bool { return doc == "mine" })
	cMine := NewClientForDoc(fabric.FromSim(sim.MustAddNode("c1")), "host", "mine")
	cOther := NewClientForDoc(fabric.FromSim(sim.MustAddNode("c2")), "host", "theirs")
	_ = cMine.Join(sim.Now())
	_ = cOther.Join(sim.Now())
	sim.Run()
	if !cMine.Joined() {
		t.Fatal("owned document rejected")
	}
	if cOther.Joined() {
		t.Fatal("foreign document served")
	}
	if mh.Host("theirs") != nil {
		t.Fatal("foreign document allocated")
	}
	if mh.Rejected() == 0 {
		t.Fatal("rejection not counted")
	}
}

// TestMultiHostModeSwitch: SetMode reaches one document without touching
// the other.
func TestMultiHostModeSwitch(t *testing.T) {
	sim := netsim.New(1, netsim.LANLink)
	mh := NewMultiHost(fabric.FromSim(sim.MustAddNode("host")), Synchronous, sim.Now, nil)
	a := NewClientForDoc(fabric.FromSim(sim.MustAddNode("a")), "host", "docA")
	b := NewClientForDoc(fabric.FromSim(sim.MustAddNode("b")), "host", "docB")
	_ = a.Join(sim.Now())
	_ = b.Join(sim.Now())
	sim.Run()
	mh.SetMode("docA", Asynchronous)
	sim.Run()
	if got := a.Mode(); got != Asynchronous {
		t.Fatalf("docA client mode = %v, want asynchronous", got)
	}
	if got := b.Mode(); got != Synchronous {
		t.Fatalf("docB client mode = %v, want synchronous (leaked switch)", got)
	}
}
