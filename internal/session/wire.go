package session

import (
	"fmt"

	"repro/internal/transport"
)

// Wire type tags for the TCP transport.
const (
	tagJoin     = "session/join"
	tagJoinAck  = "session/join-ack"
	tagPost     = "session/post"
	tagItems    = "session/items"
	tagPoll     = "session/poll"
	tagMode     = "session/mode"
	tagPresence = "session/presence"
	tagLeave    = "session/leave"
)

// EndpointConduit adapts a transport.Endpoint (in-memory hub or TCP) to the
// Conduit interface used by Host and Client, JSON-encoding the session wire
// messages. Incoming traffic must be routed with DecodePayload and handed to
// Host.Receive / Client.Receive.
type EndpointConduit struct {
	ep transport.Endpoint
}

var _ Conduit = (*EndpointConduit)(nil)

// NewEndpointConduit wraps ep.
func NewEndpointConduit(ep transport.Endpoint) *EndpointConduit {
	return &EndpointConduit{ep: ep}
}

// ID returns the endpoint identifier.
func (c *EndpointConduit) ID() string { return c.ep.ID() }

// Send JSON-encodes a session message and transmits it.
func (c *EndpointConduit) Send(to string, payload any, size int) error {
	var tag string
	switch payload.(type) {
	case *MsgJoin, MsgJoin:
		tag = tagJoin
	case *MsgJoinAck, MsgJoinAck:
		tag = tagJoinAck
	case *MsgPost, MsgPost:
		tag = tagPost
	case *MsgItems, MsgItems:
		tag = tagItems
	case *MsgPoll, MsgPoll:
		tag = tagPoll
	case *MsgMode, MsgMode:
		tag = tagMode
	case *MsgPresence, MsgPresence:
		tag = tagPresence
	case *MsgLeave, MsgLeave:
		tag = tagLeave
	default:
		return fmt.Errorf("session: cannot encode %T", payload)
	}
	data, err := transport.Marshal(tag, payload)
	if err != nil {
		return err
	}
	return c.ep.Send(to, data)
}

// DecodePayload parses wire data back into the typed session message that
// Host.Receive / Client.Receive expect. Unknown tags return (nil, nil) so
// mixed-traffic endpoints can skip them.
func DecodePayload(data []byte) (any, error) {
	env, err := transport.Unmarshal(data)
	if err != nil {
		return nil, err
	}
	decode := func(out any) (any, error) {
		if err := transport.Decode(env, out); err != nil {
			return nil, err
		}
		return out, nil
	}
	switch env.Type {
	case tagJoin:
		return decode(&MsgJoin{})
	case tagJoinAck:
		return decode(&MsgJoinAck{})
	case tagPost:
		return decode(&MsgPost{})
	case tagItems:
		return decode(&MsgItems{})
	case tagPoll:
		return decode(&MsgPoll{})
	case tagMode:
		return decode(&MsgMode{})
	case tagPresence:
		return decode(&MsgPresence{})
	case tagLeave:
		return decode(&MsgLeave{})
	default:
		return nil, nil
	}
}
