package session

import "repro/internal/fabric"

// Wire type tags for byte-oriented transports.
const (
	tagJoin     = "session/join"
	tagJoinAck  = "session/join-ack"
	tagPost     = "session/post"
	tagItems    = "session/items"
	tagPoll     = "session/poll"
	tagMode     = "session/mode"
	tagPresence = "session/presence"
	tagLeave    = "session/leave"
)

// RegisterWire registers the session wire messages with a fabric codec, so
// Host and Client can run over fabric.FromTransport endpoints (in-memory
// hub or TCP) as well as netsim.
func RegisterWire(c *fabric.Codec) {
	c.Register(tagJoin, MsgJoin{})
	c.Register(tagJoinAck, MsgJoinAck{})
	c.Register(tagPost, MsgPost{})
	c.Register(tagItems, MsgItems{})
	c.Register(tagPoll, MsgPoll{})
	c.Register(tagMode, MsgMode{})
	c.Register(tagPresence, MsgPresence{})
	c.Register(tagLeave, MsgLeave{})
}

// NewWireCodec returns a codec pre-loaded with the session wire messages.
func NewWireCodec() *fabric.Codec {
	c := fabric.NewCodec()
	RegisterWire(c)
	return c
}
