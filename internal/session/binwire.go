package session

import (
	"fmt"
	"time"

	"repro/internal/fabric"
)

// Binary bodies for the session wire messages (fabric.BinaryAppender /
// BinaryParser). Session traffic is the chattiest in the system — every
// post, push and poll crosses the wire — so it gets hand-rolled bodies
// instead of the JSON fallback: uvarint integers and length-prefixed
// strings, no reflection, no intermediate buffers. Field order is fixed
// and versioning rides on the fabric frame header.

func appendItem(dst []byte, it Item) []byte {
	dst = fabric.AppendUvarint(dst, it.Seq)
	dst = fabric.AppendString(dst, it.From)
	dst = fabric.AppendString(dst, it.Kind)
	dst = fabric.AppendString(dst, it.Body)
	return fabric.AppendUvarint(dst, uint64(it.At))
}

func consumeItem(data []byte) (Item, []byte, error) {
	var it Item
	var err error
	if it.Seq, data, err = fabric.ConsumeUvarint(data); err != nil {
		return it, nil, err
	}
	if it.From, data, err = fabric.ConsumeString(data); err != nil {
		return it, nil, err
	}
	if it.Kind, data, err = fabric.ConsumeString(data); err != nil {
		return it, nil, err
	}
	if it.Body, data, err = fabric.ConsumeString(data); err != nil {
		return it, nil, err
	}
	var at uint64
	if at, data, err = fabric.ConsumeUvarint(data); err != nil {
		return it, nil, err
	}
	it.At = time.Duration(at)
	return it, data, nil
}

func appendItems(dst []byte, items []Item) []byte {
	dst = fabric.AppendUvarint(dst, uint64(len(items)))
	for _, it := range items {
		dst = appendItem(dst, it)
	}
	return dst
}

func consumeItems(data []byte) ([]Item, []byte, error) {
	n, data, err := fabric.ConsumeUvarint(data)
	if err != nil {
		return nil, nil, err
	}
	if n == 0 {
		return nil, data, nil
	}
	// Each item takes at least 5 bytes; bound the allocation by what the
	// body could actually hold so a corrupt count cannot balloon memory.
	if n > uint64(len(data)) {
		return nil, nil, fmt.Errorf("%w: %d items in %d bytes", fabric.ErrTruncatedFrame, n, len(data))
	}
	items := make([]Item, 0, n)
	for i := uint64(0); i < n; i++ {
		var it Item
		if it, data, err = consumeItem(data); err != nil {
			return nil, nil, err
		}
		items = append(items, it)
	}
	return items, data, nil
}

// done rejects trailing bytes after a fully parsed body.
func done(what string, rest []byte) error {
	if len(rest) != 0 {
		return fmt.Errorf("session: %s body carries %d trailing bytes", what, len(rest))
	}
	return nil
}

// AppendBinary implements fabric.BinaryAppender.
func (m MsgJoin) AppendBinary(dst []byte) ([]byte, error) {
	dst = fabric.AppendString(dst, m.Doc)
	dst = fabric.AppendString(dst, m.From)
	dst = fabric.AppendUvarint(dst, m.Since)
	return fabric.AppendUvarint(dst, uint64(m.State)), nil
}

// ParseBinary implements fabric.BinaryParser.
func (m *MsgJoin) ParseBinary(data []byte) error {
	var err error
	if m.Doc, data, err = fabric.ConsumeString(data); err != nil {
		return err
	}
	if m.From, data, err = fabric.ConsumeString(data); err != nil {
		return err
	}
	if m.Since, data, err = fabric.ConsumeUvarint(data); err != nil {
		return err
	}
	var st uint64
	if st, data, err = fabric.ConsumeUvarint(data); err != nil {
		return err
	}
	m.State = Presence(st)
	return done("join", data)
}

// AppendBinary implements fabric.BinaryAppender.
func (m MsgJoinAck) AppendBinary(dst []byte) ([]byte, error) {
	dst = fabric.AppendString(dst, m.Doc)
	dst = fabric.AppendUvarint(dst, uint64(m.Mode))
	dst = fabric.AppendUvarint(dst, uint64(len(m.Members)))
	for _, id := range m.Members {
		dst = fabric.AppendString(dst, id)
	}
	return appendItems(dst, m.Backlog), nil
}

// ParseBinary implements fabric.BinaryParser.
func (m *MsgJoinAck) ParseBinary(data []byte) error {
	var err error
	if m.Doc, data, err = fabric.ConsumeString(data); err != nil {
		return err
	}
	var mode, n uint64
	if mode, data, err = fabric.ConsumeUvarint(data); err != nil {
		return err
	}
	m.Mode = Mode(mode)
	if n, data, err = fabric.ConsumeUvarint(data); err != nil {
		return err
	}
	if n > uint64(len(data)) {
		return fmt.Errorf("%w: %d members in %d bytes", fabric.ErrTruncatedFrame, n, len(data))
	}
	if n > 0 {
		m.Members = make([]string, 0, n)
		for i := uint64(0); i < n; i++ {
			var id string
			if id, data, err = fabric.ConsumeString(data); err != nil {
				return err
			}
			m.Members = append(m.Members, id)
		}
	}
	if m.Backlog, data, err = consumeItems(data); err != nil {
		return err
	}
	return done("join-ack", data)
}

// AppendBinary implements fabric.BinaryAppender.
func (m MsgPost) AppendBinary(dst []byte) ([]byte, error) {
	dst = fabric.AppendString(dst, m.Doc)
	dst = fabric.AppendString(dst, m.From)
	dst = fabric.AppendString(dst, m.Kind)
	return fabric.AppendString(dst, m.Body), nil
}

// ParseBinary implements fabric.BinaryParser.
func (m *MsgPost) ParseBinary(data []byte) error {
	var err error
	if m.Doc, data, err = fabric.ConsumeString(data); err != nil {
		return err
	}
	if m.From, data, err = fabric.ConsumeString(data); err != nil {
		return err
	}
	if m.Kind, data, err = fabric.ConsumeString(data); err != nil {
		return err
	}
	if m.Body, data, err = fabric.ConsumeString(data); err != nil {
		return err
	}
	return done("post", data)
}

// AppendBinary implements fabric.BinaryAppender.
func (m MsgItems) AppendBinary(dst []byte) ([]byte, error) {
	dst = fabric.AppendString(dst, m.Doc)
	return appendItems(dst, m.Items), nil
}

// ParseBinary implements fabric.BinaryParser.
func (m *MsgItems) ParseBinary(data []byte) error {
	var err error
	if m.Doc, data, err = fabric.ConsumeString(data); err != nil {
		return err
	}
	if m.Items, data, err = consumeItems(data); err != nil {
		return err
	}
	return done("items", data)
}

// AppendBinary implements fabric.BinaryAppender.
func (m MsgPoll) AppendBinary(dst []byte) ([]byte, error) {
	dst = fabric.AppendString(dst, m.Doc)
	dst = fabric.AppendString(dst, m.From)
	return fabric.AppendUvarint(dst, m.Since), nil
}

// ParseBinary implements fabric.BinaryParser.
func (m *MsgPoll) ParseBinary(data []byte) error {
	var err error
	if m.Doc, data, err = fabric.ConsumeString(data); err != nil {
		return err
	}
	if m.From, data, err = fabric.ConsumeString(data); err != nil {
		return err
	}
	if m.Since, data, err = fabric.ConsumeUvarint(data); err != nil {
		return err
	}
	return done("poll", data)
}

// AppendBinary implements fabric.BinaryAppender.
func (m MsgMode) AppendBinary(dst []byte) ([]byte, error) {
	dst = fabric.AppendString(dst, m.Doc)
	return fabric.AppendUvarint(dst, uint64(m.Mode)), nil
}

// ParseBinary implements fabric.BinaryParser.
func (m *MsgMode) ParseBinary(data []byte) error {
	var err error
	if m.Doc, data, err = fabric.ConsumeString(data); err != nil {
		return err
	}
	var mode uint64
	if mode, data, err = fabric.ConsumeUvarint(data); err != nil {
		return err
	}
	m.Mode = Mode(mode)
	return done("mode", data)
}

// AppendBinary implements fabric.BinaryAppender.
func (m MsgPresence) AppendBinary(dst []byte) ([]byte, error) {
	dst = fabric.AppendString(dst, m.Doc)
	dst = fabric.AppendString(dst, m.From)
	return fabric.AppendUvarint(dst, uint64(m.State)), nil
}

// ParseBinary implements fabric.BinaryParser.
func (m *MsgPresence) ParseBinary(data []byte) error {
	var err error
	if m.Doc, data, err = fabric.ConsumeString(data); err != nil {
		return err
	}
	if m.From, data, err = fabric.ConsumeString(data); err != nil {
		return err
	}
	var st uint64
	if st, data, err = fabric.ConsumeUvarint(data); err != nil {
		return err
	}
	m.State = Presence(st)
	return done("presence", data)
}

// AppendBinary implements fabric.BinaryAppender.
func (m MsgLeave) AppendBinary(dst []byte) ([]byte, error) {
	dst = fabric.AppendString(dst, m.Doc)
	return fabric.AppendString(dst, m.From), nil
}

// ParseBinary implements fabric.BinaryParser.
func (m *MsgLeave) ParseBinary(data []byte) error {
	var err error
	if m.Doc, data, err = fabric.ConsumeString(data); err != nil {
		return err
	}
	if m.From, data, err = fabric.ConsumeString(data); err != nil {
		return err
	}
	return done("leave", data)
}
