package session

import (
	"sort"
	"sync"
	"time"

	"repro/internal/fabric"
)

// HostStats aggregates host activity.
type HostStats struct {
	Posts        int
	Pushes       int // items pushed synchronously
	PollServes   int // items served to polls
	FlushServes  int // items flushed by a mode transition
	ModeSwitches int
}

type partState struct {
	id       string
	presence Presence
	acked    uint64 // highest sequence number delivered (push or poll)
}

// Host is the session coordinator. It claims its endpoint's handler at
// construction and guards all state with an internal mutex, so it is safe
// over netsim and over concurrent real transports alike; the OnItem
// callback runs outside the lock.
type Host struct {
	ep  fabric.Endpoint
	doc string // document key; "" is the unnamed (single-session) host

	mu       sync.Mutex
	cbs      []func()
	flushing bool

	mode  Mode
	log   []Item
	seq   uint64
	parts map[string]*partState
	clock func() time.Duration
	stats HostStats
	// OnItem observes every accepted post (the hyperdoc and experiment
	// layers tap this).
	OnItem func(Item)
}

// NewHost creates a session host on the given endpoint and claims its
// handler. clock supplies the current (virtual or real) time for item
// stamping.
func NewHost(ep fabric.Endpoint, mode Mode, clock func() time.Duration) *Host {
	h := NewDocHost(ep, mode, clock, "")
	ep.SetHandler(func(from string, payload any, size int) {
		h.Receive(from, payload)
	})
	return h
}

// NewDocHost creates a host for one named document WITHOUT claiming the
// endpoint's handler: the caller (normally a MultiHost demultiplexing many
// documents over one endpoint) owns the handler and feeds Receive. All
// outbound messages are stamped with doc; inbound messages for other
// documents are ignored.
func NewDocHost(ep fabric.Endpoint, mode Mode, clock func() time.Duration, doc string) *Host {
	return &Host{
		ep:    ep,
		doc:   doc,
		mode:  mode,
		parts: make(map[string]*partState),
		clock: clock,
	}
}

// Doc returns the document key this host serves ("" for the unnamed
// session).
func (h *Host) Doc() string { return h.doc }

// runCallbacks is called with h.mu held and returns with it released; see
// group.Member.runCallbacks for the pattern.
func (h *Host) runCallbacks() {
	if h.flushing {
		h.mu.Unlock()
		return
	}
	h.flushing = true
	for len(h.cbs) > 0 {
		batch := h.cbs
		h.cbs = nil
		h.mu.Unlock()
		for _, fn := range batch {
			fn()
		}
		h.mu.Lock()
	}
	h.flushing = false
	h.mu.Unlock()
}

// Mode returns the session's current mode.
func (h *Host) Mode() Mode {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.mode
}

// Stats returns accumulated statistics.
func (h *Host) Stats() HostStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.stats
}

// LogLen returns the number of items in the session log.
func (h *Host) LogLen() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.log)
}

// Members returns joined participants (any presence), sorted.
func (h *Host) Members() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.members()
}

func (h *Host) members() []string {
	out := make([]string, 0, len(h.parts))
	for id := range h.parts {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// PresenceOf returns a participant's presence (Offline if never joined).
func (h *Host) PresenceOf(id string) Presence {
	h.mu.Lock()
	defer h.mu.Unlock()
	if p, ok := h.parts[id]; ok {
		return p.presence
	}
	return Offline
}

// Receive ingests a wire message. NewHost wires the endpoint's handler
// here; tests may call it directly.
func (h *Host) Receive(from string, payload any) {
	if h.doc != "" && DocOf(payload) != h.doc {
		return // another document's traffic on a shared endpoint
	}
	h.mu.Lock()
	switch m := payload.(type) {
	case *MsgJoin:
		h.onJoin(*m)
	case MsgJoin:
		h.onJoin(m)
	case *MsgPost:
		h.onPost(*m)
	case MsgPost:
		h.onPost(m)
	case *MsgPoll:
		h.onPoll(*m)
	case MsgPoll:
		h.onPoll(m)
	case *MsgPresence:
		h.onPresence(*m)
	case MsgPresence:
		h.onPresence(m)
	case *MsgLeave:
		h.onLeave(*m)
	case MsgLeave:
		h.onLeave(m)
	}
	h.runCallbacks()
}

func (h *Host) onJoin(m MsgJoin) {
	p, ok := h.parts[m.From]
	if !ok {
		p = &partState{id: m.From}
		h.parts[m.From] = p
	}
	p.presence = m.State
	if p.presence == 0 {
		p.presence = Active
	}
	backlog := withoutFrom(h.itemsAfter(m.Since), m.From)
	p.acked = h.seq
	ack := &MsgJoinAck{Mode: h.mode, Backlog: backlog, Members: h.members()}
	h.send(m.From, ack, len(backlog)*32+64)
	// Tell the others someone arrived (presence awareness).
	h.fanout(&MsgPresence{From: m.From, State: p.presence}, m.From)
}

func (h *Host) onLeave(m MsgLeave) {
	if p, ok := h.parts[m.From]; ok {
		p.presence = Offline
	}
	h.fanout(&MsgPresence{From: m.From, State: Offline}, m.From)
}

func (h *Host) onPresence(m MsgPresence) {
	p, ok := h.parts[m.From]
	if !ok {
		return
	}
	was := p.presence
	p.presence = m.State
	// Returning to Active in a synchronous session replays the items posted
	// while away, before any new push: resumed pushes would otherwise move
	// the participant's cursor past the interim items, losing them for good
	// (clients poll from their highest seen sequence number).
	if h.mode == Synchronous && m.State == Active && was != Active {
		missed := withoutFrom(h.itemsAfter(p.acked), m.From)
		if len(missed) > 0 {
			h.stats.FlushServes += len(missed)
			h.send(m.From, &MsgItems{Items: missed}, len(missed)*32+64)
		}
		p.acked = h.seq
	}
	h.fanout(&MsgPresence{From: m.From, State: m.State}, m.From)
}

func (h *Host) onPost(m MsgPost) {
	if _, ok := h.parts[m.From]; !ok {
		return // posts from strangers are dropped
	}
	h.appendItem(m.From, m.Kind, m.Body)
}

// HostAuthor is the author id of items the host posts itself (PostLocal).
// Participant ids never start with '!', so host items are pushed to every
// participant and are never filtered as someone's own.
const HostAuthor = "!host"

// PostLocal appends an item authored by the host itself and propagates it
// exactly like an accepted participant post — daemon-side convergence
// engines publish OT commits into the session log this way.
func (h *Host) PostLocal(kind, body string) {
	h.mu.Lock()
	h.appendItem(HostAuthor, kind, body)
	h.runCallbacks()
}

// appendItem logs one item and pushes it per the session mode. Callers
// hold h.mu.
func (h *Host) appendItem(from, kind, body string) {
	h.seq++
	it := Item{Seq: h.seq, From: from, Kind: kind, Body: body, At: h.clock()}
	h.log = append(h.log, it)
	h.stats.Posts++
	if h.OnItem != nil {
		onItem := h.OnItem
		h.cbs = append(h.cbs, func() { onItem(it) })
	}
	if h.mode != Synchronous {
		return
	}
	for _, id := range h.members() {
		p := h.parts[id]
		if p.presence != Active || id == from {
			// The poster's own item counts as delivered to it — but only
			// while Active, when everything before it was pushed too.
			// Advancing an away poster's cursor would skip the interim
			// items out of its return-to-active flush.
			if id == from && p.presence == Active {
				p.acked = it.Seq
			}
			continue
		}
		h.stats.Pushes++
		p.acked = it.Seq
		h.send(id, &MsgItems{Items: []Item{it}}, len(it.Body)+64)
	}
}

func (h *Host) onPoll(m MsgPoll) {
	p, ok := h.parts[m.From]
	if !ok {
		return
	}
	items := withoutFrom(h.itemsAfter(m.Since), m.From)
	h.stats.PollServes += len(items)
	p.acked = h.seq
	h.send(m.From, &MsgItems{Items: items}, len(items)*32+64)
}

// SetMode switches the session mode. An asynchronous-to-synchronous switch
// flushes every present participant's backlog so nobody resumes live work
// with stale state — the seamless transition.
func (h *Host) SetMode(mode Mode) {
	h.mu.Lock()
	if mode == h.mode {
		h.mu.Unlock()
		return
	}
	h.mode = mode
	h.stats.ModeSwitches++
	h.fanout(&MsgMode{Mode: mode}, "")
	if mode == Synchronous {
		for _, id := range h.members() {
			p := h.parts[id]
			if p.presence != Active {
				continue
			}
			missed := withoutFrom(h.itemsAfter(p.acked), id)
			if len(missed) == 0 {
				p.acked = h.seq
				continue
			}
			h.stats.FlushServes += len(missed)
			p.acked = h.seq
			h.send(id, &MsgItems{Items: missed}, len(missed)*32+64)
		}
	}
	h.runCallbacks()
}

func (h *Host) itemsAfter(since uint64) []Item {
	if since >= h.seq {
		return nil
	}
	// Sequence numbers are dense (1..seq), so index directly.
	start := int(since)
	if start > len(h.log) {
		start = len(h.log)
	}
	out := make([]Item, len(h.log)-start)
	copy(out, h.log[start:])
	return out
}

// withoutFrom filters out items authored by from: a participant's own items
// are never delivered back to it.
func withoutFrom(items []Item, from string) []Item {
	out := items[:0]
	for _, it := range items {
		if it.From != from {
			out = append(out, it)
		}
	}
	return out
}

// stamp writes the host's document key into an outbound message. All host
// sends construct fresh pointer payloads, so mutating here is safe.
func (h *Host) stamp(payload any) {
	if h.doc == "" {
		return
	}
	switch m := payload.(type) {
	case *MsgJoinAck:
		m.Doc = h.doc
	case *MsgItems:
		m.Doc = h.doc
	case *MsgMode:
		m.Doc = h.doc
	case *MsgPresence:
		m.Doc = h.doc
	}
}

func (h *Host) fanout(payload any, except string) {
	for _, id := range h.members() {
		p := h.parts[id]
		if id == except || p.presence == Offline {
			continue
		}
		h.send(id, payload, 64)
	}
}

// send queues a delivery on the callback queue, so the actual endpoint
// Send runs after h.mu is released (a Send can block over a real
// transport; holding the lock across it invites distributed deadlock —
// cscwlint's block-lock rule enforces the discipline). Queued sends flush
// in order, preserving the per-peer FIFO the clients rely on.
func (h *Host) send(to string, payload any, size int) {
	h.stamp(payload)
	h.cbs = append(h.cbs, func() {
		// Transient send failures (partitions, disconnected mobiles) surface
		// as missed pushes; the poll path recovers them, so drop silently.
		_ = h.ep.Send(to, payload, size)
	})
}
