package session

import (
	"sort"
	"sync"
	"time"

	"repro/internal/fabric"
)

// MultiHost serves many documents over one endpoint: it claims the
// endpoint's handler, demultiplexes traffic by each message's Doc key, and
// lazily creates one Host per document on first join. With a shard router
// in front (internal/route), an Owns predicate confines the host to its
// shards: traffic for documents placed elsewhere is counted and dropped
// rather than silently answered, which would fork the document's log.
type MultiHost struct {
	ep    fabric.Endpoint
	mode  Mode
	clock func() time.Duration
	owns  func(doc string) bool
	// OnItem observes every accepted post across all documents. Set it
	// before traffic flows; hosts capture it at creation.
	OnItem func(doc string, it Item)

	mu       sync.Mutex
	hosts    map[string]*Host
	rejected uint64
}

// NewMultiHost creates a multi-document host on ep and claims its handler.
// owns restricts service to the documents it returns true for; nil serves
// everything (a single unsharded host).
func NewMultiHost(ep fabric.Endpoint, mode Mode, clock func() time.Duration, owns func(doc string) bool) *MultiHost {
	mh := &MultiHost{
		ep:    ep,
		mode:  mode,
		clock: clock,
		owns:  owns,
		hosts: make(map[string]*Host),
	}
	ep.SetHandler(func(from string, payload any, size int) {
		mh.receive(from, payload)
	})
	return mh
}

// receive demultiplexes one wire message. The per-document Host.Receive
// runs outside mh.mu: a host receive can queue endpoint sends, and those
// must never happen under a lock (the block-lock discipline).
func (mh *MultiHost) receive(from string, payload any) {
	doc := DocOf(payload)
	if mh.owns != nil && !mh.owns(doc) {
		mh.mu.Lock()
		mh.rejected++
		mh.mu.Unlock()
		return
	}
	mh.mu.Lock()
	h, ok := mh.hosts[doc]
	if !ok {
		// Only a join opens a document: posts or polls for an unknown
		// document are from participants who never joined, and a Host
		// would drop them anyway — creating state for them would let
		// strangers allocate documents.
		switch payload.(type) {
		case *MsgJoin, MsgJoin:
		default:
			mh.mu.Unlock()
			return
		}
		h = NewDocHost(mh.ep, mh.mode, mh.clock, doc)
		if onItem := mh.OnItem; onItem != nil {
			d := doc
			h.OnItem = func(it Item) { onItem(d, it) }
		}
		mh.hosts[doc] = h
	}
	mh.mu.Unlock()
	h.Receive(from, payload)
}

// Host returns the host serving doc, or nil if no participant has joined
// it yet.
func (mh *MultiHost) Host(doc string) *Host {
	mh.mu.Lock()
	defer mh.mu.Unlock()
	return mh.hosts[doc]
}

// Docs returns the open documents, sorted.
func (mh *MultiHost) Docs() []string {
	mh.mu.Lock()
	defer mh.mu.Unlock()
	out := make([]string, 0, len(mh.hosts))
	for doc := range mh.hosts {
		out = append(out, doc)
	}
	sort.Strings(out)
	return out
}

// Rejected counts messages dropped because their document is owned by
// another shard's host.
func (mh *MultiHost) Rejected() uint64 {
	mh.mu.Lock()
	defer mh.mu.Unlock()
	return mh.rejected
}

// SetMode switches one document's session mode (no-op for unopened docs).
func (mh *MultiHost) SetMode(doc string, mode Mode) {
	if h := mh.Host(doc); h != nil {
		h.SetMode(mode)
	}
}
