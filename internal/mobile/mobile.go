// Package mobile implements disconnected operation for mobile CSCW workers
// (paper §3.3.3 and §4.2.2 "the impact of mobility"), following the Coda
// model the paper cites (Kistler & Satyanarayanan 1991):
//
//   - caching with an explicit *hoard* set prefetched while connected;
//   - a disconnected-operation log of updates made against the cache;
//   - *reintegration* on reconnection, replaying the log against the server
//     with version-based conflict detection;
//   - *bulk update* of stale cache entries when connectivity improves to a
//     high-speed link (the paper: "services will take advantage of higher
//     levels of connection to perform bulk updates, e.g. of cached data").
//
// Connection levels mirror netsim.ConnLevel (disconnected / partial / full).
// The package is cost-transparent: every remote interaction is counted so
// experiment E9 can price them per level.
package mobile

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/fabric"
	"repro/internal/netsim"
	"repro/internal/txn"
)

// Errors returned by the mobile client.
var (
	// ErrDisconnectedMiss reports a read of an unhoarded object while
	// disconnected — the availability failure hoarding exists to prevent.
	ErrDisconnectedMiss = errors.New("mobile: cache miss while disconnected")
)

// Stats counts the client's interactions for cost accounting.
type Stats struct {
	LocalHits    int // reads served from cache
	RemoteReads  int // reads served by the server
	RemoteWrites int // write-throughs
	LoggedWrites int // writes logged while disconnected
	Misses       int // disconnected misses
	Replayed     int // log records replayed at reintegration
	Conflicts    int // reintegration conflicts detected
	BulkFetched  int // entries refreshed by bulk update
}

// Resolution selects the conflict policy at reintegration.
type Resolution int

const (
	// ServerWins discards the client's conflicting update (it is surfaced
	// to the caller for manual repair, as Coda does).
	ServerWins Resolution = iota + 1
	// ClientWins overwrites the server with the client's update.
	ClientWins
)

// Conflict reports one reintegration conflict.
type Conflict struct {
	Key         string
	BaseVersion uint64 // version the client's update was based on
	ServerVer   uint64 // version found at the server
	ClientValue string
	ServerValue string
	At          time.Duration
}

// logRec is one disconnected update.
type logRec struct {
	key   string
	value string
	base  uint64 // cache version the update was made against
	at    time.Duration
}

type entry struct {
	value   string
	version uint64
	dirty   bool
	used    uint64 // recency stamp for LRU eviction
}

// Client is a mobile host's cache manager over a shared server store.
type Client struct {
	id     string
	server *txn.Store
	level  netsim.ConnLevel
	cache  map[string]*entry
	hoard  map[string]bool
	log    []logRec
	res    Resolution
	stats  Stats
	limit  int    // max cache entries; 0 = unbounded
	clock  uint64 // LRU recency counter

	up       fabric.Endpoint // optional uplink for Traffic records
	upServer string

	// OnConflict observes reintegration conflicts (for the user's manual
	// repair queue).
	OnConflict func(c Conflict)
}

// NewClient creates a mobile client over server, initially fully connected.
func NewClient(id string, server *txn.Store, res Resolution) *Client {
	if res == 0 {
		res = ServerWins
	}
	return &Client{
		id:     id,
		server: server,
		level:  netsim.Full,
		cache:  make(map[string]*entry),
		hoard:  make(map[string]bool),
		res:    res,
	}
}

// Level returns the current connection level.
func (c *Client) Level() netsim.ConnLevel { return c.level }

// SetCacheLimit bounds the cache to n entries with least-recently-used
// eviction (dirty entries are never evicted). Zero removes the bound. This
// models the small disks of 1993 portables; the hoard-policy ablation uses
// it.
func (c *Client) SetCacheLimit(n int) {
	c.limit = n
	c.evict()
}

// CacheLen returns the number of cached entries.
func (c *Client) CacheLen() int { return len(c.cache) }

// touch stamps an entry as recently used and triggers eviction.
func (c *Client) touch(key string, e *entry) {
	c.clock++
	e.used = c.clock
	c.evict()
}

func (c *Client) evict() {
	if c.limit <= 0 {
		return
	}
	for len(c.cache) > c.limit {
		victim := ""
		var oldest uint64
		for k, e := range c.cache {
			if e.dirty {
				continue
			}
			if victim == "" || e.used < oldest {
				victim, oldest = k, e.used
			}
		}
		if victim == "" {
			return // everything dirty; nothing evictable
		}
		delete(c.cache, victim)
	}
}

// Stats returns accumulated statistics.
func (c *Client) Stats() Stats { return c.stats }

// LogLen returns the number of pending disconnected updates.
func (c *Client) LogLen() int { return len(c.log) }

// Hoard adds keys to the hoard set and, if connected, prefetches them.
func (c *Client) Hoard(keys ...string) {
	for _, k := range keys {
		c.hoard[k] = true
	}
	if c.level != netsim.Disconnected {
		c.fetch(keys)
	}
}

// HoardSet returns the hoard set, sorted.
func (c *Client) HoardSet() []string {
	out := make([]string, 0, len(c.hoard))
	for k := range c.hoard {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func (c *Client) fetch(keys []string) {
	for _, k := range keys {
		v, ok := c.server.Get(k)
		if !ok {
			continue
		}
		c.stats.RemoteReads++
		c.report("fetch", k, len(v))
		e := &entry{value: v, version: c.server.Version(k)}
		c.cache[k] = e
		c.touch(k, e)
	}
}

// Read returns the value of key. Connected reads go to the server
// (refreshing the cache); disconnected reads are served from the cache or
// fail with ErrDisconnectedMiss.
func (c *Client) Read(key string, now time.Duration) (string, error) {
	if c.level == netsim.Disconnected {
		e, ok := c.cache[key]
		if !ok {
			c.stats.Misses++
			return "", fmt.Errorf("%w: %s", ErrDisconnectedMiss, key)
		}
		c.stats.LocalHits++
		c.touch(key, e)
		return e.value, nil
	}
	// Connected: dirty entries (not yet reintegrated) shadow the server.
	if e, ok := c.cache[key]; ok && e.dirty {
		c.stats.LocalHits++
		c.touch(key, e)
		return e.value, nil
	}
	v, ok := c.server.Get(key)
	if !ok {
		return "", fmt.Errorf("mobile: %s not found", key)
	}
	c.stats.RemoteReads++
	c.report("read", key, len(v))
	e := &entry{value: v, version: c.server.Version(key)}
	c.cache[key] = e
	c.touch(key, e)
	return v, nil
}

// Write updates key. Connected writes go straight through to the server;
// disconnected writes update the cache and append to the reintegration log.
func (c *Client) Write(key, value string, now time.Duration) error {
	if c.level == netsim.Disconnected {
		e, ok := c.cache[key]
		if !ok {
			e = &entry{}
			c.cache[key] = e
		}
		c.stats.LoggedWrites++
		e.value = value
		e.dirty = true
		// Log coalescing (as in Coda): successive disconnected writes to
		// one object collapse to the last, keeping the base version of the
		// first so reintegration compares against the state the whole
		// disconnected editing session started from.
		for i := range c.log {
			if c.log[i].key == key {
				c.log[i].value = value
				c.log[i].at = now
				return nil
			}
		}
		c.log = append(c.log, logRec{key: key, value: value, base: e.version, at: now})
		return nil
	}
	c.server.Set(key, value)
	c.stats.RemoteWrites++
	c.report("write", key, len(value))
	e := &entry{value: value, version: c.server.Version(key)}
	c.cache[key] = e
	c.touch(key, e)
	return nil
}

// SetLevel changes the connection level. An upward transition from
// Disconnected triggers reintegration; reaching Full additionally triggers
// a bulk refresh of the cache. It returns the conflicts found (if any).
func (c *Client) SetLevel(level netsim.ConnLevel, now time.Duration) []Conflict {
	old := c.level
	c.level = level
	var conflicts []Conflict
	if old == netsim.Disconnected && level != netsim.Disconnected {
		conflicts = c.Reintegrate(now)
	}
	if level == netsim.Full && old != netsim.Full {
		c.BulkUpdate(now)
	}
	return conflicts
}

// Reintegrate replays the disconnected log against the server. A record
// whose base version no longer matches the server's current version is a
// conflict, settled by the client's Resolution policy and reported.
func (c *Client) Reintegrate(now time.Duration) []Conflict {
	var conflicts []Conflict
	for _, r := range c.log {
		c.stats.Replayed++
		sv := c.server.Version(r.key)
		if sv != r.base {
			serverVal, _ := c.server.Get(r.key)
			cf := Conflict{
				Key: r.key, BaseVersion: r.base, ServerVer: sv,
				ClientValue: r.value, ServerValue: serverVal, At: now,
			}
			conflicts = append(conflicts, cf)
			c.stats.Conflicts++
			if c.OnConflict != nil {
				c.OnConflict(cf)
			}
			if c.res == ServerWins {
				// Drop our update; refresh the cache from the server.
				c.cache[r.key] = &entry{value: serverVal, version: sv}
				continue
			}
		}
		c.server.Set(r.key, r.value)
		c.stats.RemoteWrites++
		c.report("replay", r.key, len(r.value))
		c.cache[r.key] = &entry{value: r.value, version: c.server.Version(r.key)}
	}
	c.log = nil
	for _, e := range c.cache {
		e.dirty = false
	}
	return conflicts
}

// BulkUpdate refreshes every stale cached or hoarded entry from the server
// — the cheap-bandwidth catch-up pass on reaching a high-speed link.
func (c *Client) BulkUpdate(now time.Duration) {
	keys := make(map[string]bool, len(c.cache)+len(c.hoard))
	for k := range c.cache {
		keys[k] = true
	}
	for k := range c.hoard {
		keys[k] = true
	}
	for k := range keys {
		sv := c.server.Version(k)
		e, ok := c.cache[k]
		if ok && e.version == sv {
			continue // fresh
		}
		v, exists := c.server.Get(k)
		if !exists {
			continue
		}
		c.stats.BulkFetched++
		c.report("bulk", k, len(v))
		c.cache[k] = &entry{value: v, version: sv}
	}
}
