package mobile

import (
	"testing"

	"repro/internal/fabric"
	"repro/internal/netsim"
	"repro/internal/txn"
)

// TestUplinkReportsTraffic attaches a fabric uplink and checks that each
// class of remote interaction emits a Traffic record, while cache hits and
// disconnected operations stay silent.
func TestUplinkReportsTraffic(t *testing.T) {
	sim := netsim.New(1, netsim.LocalLink)
	srvEP := fabric.FromSim(sim.MustAddNode("server"))
	cliEP := fabric.FromSim(sim.MustAddNode("mob"))

	var ops []string
	srvEP.SetHandler(func(from string, payload any, size int) {
		if tr, ok := payload.(*Traffic); ok {
			ops = append(ops, tr.Op)
		}
	})

	store := txn.NewStore()
	store.Set("doc", "v1")
	store.Set("aux", "v1")

	c := NewClient("mob", store, ServerWins)
	c.AttachUplink(cliEP, "server")

	c.Hoard("doc")                              // fetch
	if _, err := c.Read("aux", 0); err != nil { // read
		t.Fatal(err)
	}
	if err := c.Write("doc", "v2", 0); err != nil { // write
		t.Fatal(err)
	}
	c.SetLevel(netsim.Disconnected, 0)
	if err := c.Write("doc", "v3", 0); err != nil { // logged, no record
		t.Fatal(err)
	}
	if _, err := c.Read("doc", 0); err != nil { // cache hit, no record
		t.Fatal(err)
	}
	c.SetLevel(netsim.Full, 0) // replay + bulk (of stale aux)
	sim.Run()

	want := map[string]int{"fetch": 1, "read": 1, "write": 1, "replay": 1}
	got := map[string]int{}
	for _, op := range ops {
		got[op]++
	}
	for op, n := range want {
		if got[op] < n {
			t.Errorf("op %q seen %d times, want >= %d (all: %v)", op, got[op], n, ops)
		}
	}
	if got["fetch"]+got["read"]+got["write"]+got["replay"]+got["bulk"] != len(ops) {
		t.Errorf("unexpected ops in %v", ops)
	}
}

// TestUplinkDetachedIsSilent verifies the default client never touches a
// fabric endpoint.
func TestUplinkDetachedIsSilent(t *testing.T) {
	store := txn.NewStore()
	store.Set("k", "v")
	c := NewClient("mob", store, ServerWins)
	if _, err := c.Read("k", 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Write("k", "w", 0); err != nil {
		t.Fatal(err)
	}
	// No uplink attached; reaching here without a panic is the assertion.
	if c.Stats().RemoteReads != 1 || c.Stats().RemoteWrites != 1 {
		t.Errorf("stats = %+v", c.Stats())
	}
}
