package mobile

import "repro/internal/fabric"

// Traffic is the cost record a mobile client emits for each remote
// interaction once an uplink is attached. It makes the package's cost
// transparency observable on the wire: experiment E9 prices interactions
// from the client's counters, while a server (or a metrics middleware on
// the uplink) can account for them remotely.
type Traffic struct {
	Op    string `json:"op"` // fetch | read | write | replay | bulk
	Key   string `json:"key"`
	Bytes int    `json:"bytes"`
}

// RegisterWire registers the mobile wire records with a fabric codec, so
// Traffic can cross byte-oriented transports as well as netsim.
func RegisterWire(c *fabric.Codec) {
	c.Register("mobile/traffic", Traffic{})
}

// AttachUplink makes the client report every remote interaction as a
// Traffic record sent to server over ep. The uplink is observational: cache
// reads and writes still go through the shared store, and losing the uplink
// loses only accounting, never data. Pass nil to detach.
func (c *Client) AttachUplink(ep fabric.Endpoint, server string) {
	c.up = ep
	c.upServer = server
}

// report emits one Traffic record if an uplink is attached. Send errors are
// dropped: accounting must never fail an operation that already succeeded
// against the store.
func (c *Client) report(op, key string, bytes int) {
	if c.up == nil {
		return
	}
	_ = c.up.Send(c.upServer, &Traffic{Op: op, Key: key, Bytes: bytes}, bytes+32)
}
