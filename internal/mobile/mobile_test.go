package mobile

import (
	"errors"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/txn"
)

func newServer() *txn.Store {
	s := txn.NewStore()
	s.Set("job/1", "inspect transformer")
	s.Set("job/2", "replace fuse")
	s.Set("map/area7", "grid-data")
	return s
}

func TestConnectedReadWrite(t *testing.T) {
	srv := newServer()
	c := NewClient("eng1", srv, ServerWins)
	v, err := c.Read("job/1", 0)
	if err != nil || v != "inspect transformer" {
		t.Fatalf("Read = %q, %v", v, err)
	}
	if err := c.Write("job/1", "done", 0); err != nil {
		t.Fatal(err)
	}
	if sv, _ := srv.Get("job/1"); sv != "done" {
		t.Errorf("server = %q, write-through expected", sv)
	}
	st := c.Stats()
	if st.RemoteReads != 1 || st.RemoteWrites != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestDisconnectedMissAndHit(t *testing.T) {
	srv := newServer()
	c := NewClient("eng1", srv, ServerWins)
	c.Hoard("job/1")
	c.SetLevel(netsim.Disconnected, 0)
	if v, err := c.Read("job/1", 0); err != nil || v != "inspect transformer" {
		t.Errorf("hoarded read = %q, %v", v, err)
	}
	if _, err := c.Read("job/2", 0); !errors.Is(err, ErrDisconnectedMiss) {
		t.Errorf("unhoarded read = %v", err)
	}
	st := c.Stats()
	if st.LocalHits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestHoardSet(t *testing.T) {
	srv := newServer()
	c := NewClient("e", srv, ServerWins)
	c.Hoard("job/2", "job/1")
	hs := c.HoardSet()
	if len(hs) != 2 || hs[0] != "job/1" {
		t.Errorf("HoardSet = %v", hs)
	}
}

func TestDisconnectedWriteLogsAndReintegrates(t *testing.T) {
	srv := newServer()
	c := NewClient("eng1", srv, ServerWins)
	c.Hoard("job/1")
	c.SetLevel(netsim.Disconnected, 0)
	c.Write("job/1", "in progress", time.Minute)
	c.Write("job/1", "done", 2*time.Minute)
	// Log coalescing: one record per object.
	if c.LogLen() != 1 {
		t.Fatalf("log = %d, want 1 (coalesced)", c.LogLen())
	}
	// Local read sees the disconnected update.
	if v, _ := c.Read("job/1", 3*time.Minute); v != "done" {
		t.Errorf("local read = %q", v)
	}
	// Reconnect (partial): reintegration replays the log.
	conflicts := c.SetLevel(netsim.Partial, 10*time.Minute)
	if len(conflicts) != 0 {
		t.Fatalf("unexpected conflicts: %+v", conflicts)
	}
	if sv, _ := srv.Get("job/1"); sv != "done" {
		t.Errorf("server after reintegration = %q", sv)
	}
	if c.LogLen() != 0 {
		t.Errorf("log not drained: %d", c.LogLen())
	}
	if c.Stats().Replayed != 1 {
		t.Errorf("replayed = %d", c.Stats().Replayed)
	}
	if c.Stats().LoggedWrites != 2 {
		t.Errorf("logged writes = %d", c.Stats().LoggedWrites)
	}
}

func TestReintegrationConflictServerWins(t *testing.T) {
	srv := newServer()
	c := NewClient("eng1", srv, ServerWins)
	c.Hoard("job/1")
	c.SetLevel(netsim.Disconnected, 0)
	c.Write("job/1", "client version", time.Minute)
	// Meanwhile the office updates the same job.
	srv.Set("job/1", "office version")
	var seen []Conflict
	c.OnConflict = func(cf Conflict) { seen = append(seen, cf) }
	conflicts := c.SetLevel(netsim.Partial, 10*time.Minute)
	if len(conflicts) != 1 || len(seen) != 1 {
		t.Fatalf("conflicts = %+v", conflicts)
	}
	cf := conflicts[0]
	if cf.Key != "job/1" || cf.ClientValue != "client version" || cf.ServerValue != "office version" {
		t.Errorf("conflict = %+v", cf)
	}
	// Server wins: office version survives, client cache refreshed.
	if sv, _ := srv.Get("job/1"); sv != "office version" {
		t.Errorf("server = %q", sv)
	}
	if v, _ := c.Read("job/1", 11*time.Minute); v != "office version" {
		t.Errorf("client read = %q", v)
	}
}

func TestReintegrationConflictClientWins(t *testing.T) {
	srv := newServer()
	c := NewClient("eng1", srv, ClientWins)
	c.Hoard("job/1")
	c.SetLevel(netsim.Disconnected, 0)
	c.Write("job/1", "client version", time.Minute)
	srv.Set("job/1", "office version")
	conflicts := c.SetLevel(netsim.Partial, 10*time.Minute)
	if len(conflicts) != 1 {
		t.Fatalf("conflicts = %+v", conflicts)
	}
	if sv, _ := srv.Get("job/1"); sv != "client version" {
		t.Errorf("server = %q, client should win", sv)
	}
}

func TestNoConflictWhenDifferentKeys(t *testing.T) {
	srv := newServer()
	c := NewClient("eng1", srv, ServerWins)
	c.Hoard("job/1", "job/2")
	c.SetLevel(netsim.Disconnected, 0)
	c.Write("job/1", "mine", 0)
	srv.Set("job/2", "theirs")
	if cs := c.SetLevel(netsim.Full, time.Minute); len(cs) != 0 {
		t.Errorf("conflicts = %+v", cs)
	}
}

func TestBulkUpdateOnFullConnection(t *testing.T) {
	srv := newServer()
	c := NewClient("eng1", srv, ServerWins)
	c.Hoard("job/1", "job/2", "map/area7")
	c.SetLevel(netsim.Disconnected, 0)
	// The office updates two objects while we are away.
	srv.Set("job/2", "reassigned")
	srv.Set("map/area7", "new-grid")
	// Partial reconnection reintegrates but does not bulk-refresh.
	c.SetLevel(netsim.Partial, time.Minute)
	if c.Stats().BulkFetched != 0 {
		t.Fatalf("partial should not bulk update, fetched %d", c.Stats().BulkFetched)
	}
	// Stale reads at partial level go to the server anyway; but a
	// disconnected read of job/2 would be stale. Upgrade to full: bulk.
	c.SetLevel(netsim.Full, 2*time.Minute)
	if c.Stats().BulkFetched != 2 {
		t.Fatalf("bulk fetched %d, want 2 stale entries", c.Stats().BulkFetched)
	}
	c.SetLevel(netsim.Disconnected, 3*time.Minute)
	if v, _ := c.Read("job/2", 4*time.Minute); v != "reassigned" {
		t.Errorf("post-bulk disconnected read = %q", v)
	}
}

func TestDirtyEntryShadowsServerWhileConnected(t *testing.T) {
	// A client that reconnects at Partial but has not yet been asked to
	// reintegrate mid-operation keeps serving its own dirty value. (The
	// SetLevel path reintegrates automatically; this covers the read path's
	// dirty check with a manually constructed state.)
	srv := newServer()
	c := NewClient("eng1", srv, ServerWins)
	c.Hoard("job/1")
	c.SetLevel(netsim.Disconnected, 0)
	c.Write("job/1", "dirty", 0)
	// Read back through the disconnected path.
	if v, _ := c.Read("job/1", 0); v != "dirty" {
		t.Errorf("read = %q", v)
	}
}

func TestAvailabilityVsHoardCoverage(t *testing.T) {
	// The E9 claim in miniature: availability while disconnected equals
	// hoard coverage of the working set.
	srv := txn.NewStore()
	keys := make([]string, 20)
	for i := range keys {
		keys[i] = string(rune('a' + i))
		srv.Set(keys[i], "v")
	}
	c := NewClient("e", srv, ServerWins)
	c.Hoard(keys[:10]...) // hoard half
	c.SetLevel(netsim.Disconnected, 0)
	hits := 0
	for _, k := range keys {
		if _, err := c.Read(k, 0); err == nil {
			hits++
		}
	}
	if hits != 10 {
		t.Errorf("hits = %d, want exactly the hoarded half", hits)
	}
}

func TestCacheLimitLRU(t *testing.T) {
	srv := txn.NewStore()
	for i := 0; i < 6; i++ {
		srv.Set(string(rune('a'+i)), "v")
	}
	c := NewClient("e", srv, ServerWins)
	c.SetCacheLimit(3)
	// Read a..f; only the last three survive.
	for i := 0; i < 6; i++ {
		if _, err := c.Read(string(rune('a'+i)), 0); err != nil {
			t.Fatal(err)
		}
	}
	if c.CacheLen() != 3 {
		t.Fatalf("cache = %d", c.CacheLen())
	}
	c.SetLevel(netsim.Disconnected, 0)
	for i, want := range []bool{false, false, false, true, true, true} {
		_, err := c.Read(string(rune('a'+i)), 0)
		if (err == nil) != want {
			t.Errorf("key %c cached=%v want %v", 'a'+i, err == nil, want)
		}
	}
}

func TestCacheLimitSparesDirty(t *testing.T) {
	// Dirty (unreintegrated) entries must never be evicted: losing one
	// would lose the user's disconnected work.
	srv := txn.NewStore()
	c := NewClient("e", srv, ServerWins)
	c.SetCacheLimit(2)
	c.SetLevel(netsim.Disconnected, 0)
	c.Write("a", "wa", 0)
	c.Write("b", "wb", 0)
	c.Write("c", "wc", 0) // over the cap, but everything is dirty
	if c.CacheLen() != 3 {
		t.Fatalf("cache = %d; dirty entries must all survive", c.CacheLen())
	}
	for _, k := range []string{"a", "b", "c"} {
		if v, err := c.Read(k, 1); err != nil || v != "w"+k {
			t.Errorf("read %s = %q, %v", k, v, err)
		}
	}
	if c.LogLen() != 3 {
		t.Errorf("log = %d", c.LogLen())
	}
}

func TestLRURecencyOrder(t *testing.T) {
	srv := txn.NewStore()
	for _, k := range []string{"x", "y", "z"} {
		srv.Set(k, "v")
	}
	c := NewClient("e", srv, ServerWins)
	c.SetCacheLimit(2)
	c.Read("x", 0)
	c.Read("y", 0)
	c.Read("x", 0) // x is now more recent than y
	c.Read("z", 0) // evicts y
	c.SetLevel(netsim.Disconnected, 0)
	if _, err := c.Read("x", 0); err != nil {
		t.Error("x should have survived (recently used)")
	}
	if _, err := c.Read("y", 0); err == nil {
		t.Error("y should have been evicted")
	}
}

func BenchmarkDisconnectedWriteReintegrate(b *testing.B) {
	srv := txn.NewStore()
	srv.Set("k", "v")
	c := NewClient("e", srv, ServerWins)
	c.Hoard("k")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.SetLevel(netsim.Disconnected, 0)
		c.Write("k", "x", 0)
		c.SetLevel(netsim.Full, 0)
	}
}
