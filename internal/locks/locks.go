// Package locks implements the lock disciplines the paper surveys for
// groupware concurrency control (§4.2.1):
//
//   - Pessimistic: strict two-phase-style shared/exclusive locks — the
//     conventional baseline whose "walls" Figure 2a criticises.
//   - Tickle locks (Greif & Sarin 1987): a requester "tickles" the holder;
//     if the holder has been idle past a threshold the lock transfers
//     immediately, otherwise the holder is warned and the requester queued.
//   - Soft locks (Stefik et al., Colab/Cognoter 1987): purely advisory —
//     access always proceeds, but conflicting parties are warned.
//   - Notification locks (Hornick & Zdonik 1987): readers are never blocked;
//     they register interest and are notified when the writer releases.
//
// Locks apply at any level of a granularity hierarchy (document / section /
// paragraph / sentence / word); a lock on a node conflicts with locks on its
// ancestors and descendants. Experiment E3 sweeps this hierarchy and E4
// compares the disciplines.
//
// The manager is time-explicit: callers pass the current (virtual or real)
// time into each operation, which keeps the package deterministic under
// netsim and trivially testable.
package locks

import (
	"errors"
	"fmt"
	"strings"
	"time"
)

// Discipline selects the lock semantics.
type Discipline int

const (
	// Pessimistic is conventional blocking shared/exclusive locking.
	Pessimistic Discipline = iota + 1
	// Tickle allows idle holders to be dispossessed.
	Tickle
	// Soft is advisory locking with conflict warnings.
	Soft
	// Notification never blocks readers and notifies them of changes.
	Notification
)

// String returns the discipline name.
func (d Discipline) String() string {
	switch d {
	case Pessimistic:
		return "pessimistic"
	case Tickle:
		return "tickle"
	case Soft:
		return "soft"
	case Notification:
		return "notification"
	default:
		return fmt.Sprintf("Discipline(%d)", int(d))
	}
}

// Mode is the access mode requested.
type Mode int

const (
	// Shared permits concurrent holders (read access).
	Shared Mode = iota + 1
	// Exclusive permits one holder (write access).
	Exclusive
)

// String returns the mode name.
func (m Mode) String() string {
	if m == Shared {
		return "shared"
	}
	return "exclusive"
}

// Granularity names the levels of the document hierarchy used by the
// experiments; a Path may have any depth, these are conventional labels.
type Granularity int

const (
	// GrainDocument locks the whole document.
	GrainDocument Granularity = iota + 1
	// GrainSection locks one section.
	GrainSection
	// GrainParagraph locks one paragraph.
	GrainParagraph
	// GrainSentence locks one sentence.
	GrainSentence
	// GrainWord locks one word.
	GrainWord
)

// String returns the granularity name.
func (g Granularity) String() string {
	switch g {
	case GrainDocument:
		return "document"
	case GrainSection:
		return "section"
	case GrainParagraph:
		return "paragraph"
	case GrainSentence:
		return "sentence"
	case GrainWord:
		return "word"
	default:
		return fmt.Sprintf("Granularity(%d)", int(g))
	}
}

// Depth returns the path depth conventionally associated with the
// granularity (document = 1 segment).
func (g Granularity) Depth() int { return int(g) }

// Path identifies a lockable resource as a position in the granularity
// hierarchy, e.g. ["doc", "s2", "p4"].
type Path []string

// String joins the path with slashes.
func (p Path) String() string { return strings.Join(p, "/") }

// EventType classifies lock manager events delivered to observers.
type EventType int

const (
	// EvGranted reports a lock grant.
	EvGranted EventType = iota + 1
	// EvQueued reports a request parked behind a conflicting holder.
	EvQueued
	// EvReleased reports a release.
	EvReleased
	// EvTickled warns an active holder that someone wants the lock.
	EvTickled
	// EvRevoked tells a holder its idle lock was transferred away.
	EvRevoked
	// EvConflictWarning warns both parties of a soft-lock overlap.
	EvConflictWarning
	// EvChanged notifies registered readers that the writer released.
	EvChanged
)

// String returns the event type name.
func (e EventType) String() string {
	switch e {
	case EvGranted:
		return "granted"
	case EvQueued:
		return "queued"
	case EvReleased:
		return "released"
	case EvTickled:
		return "tickled"
	case EvRevoked:
		return "revoked"
	case EvConflictWarning:
		return "conflict-warning"
	case EvChanged:
		return "changed"
	default:
		return fmt.Sprintf("EventType(%d)", int(e))
	}
}

// Event is a lock manager notification. Who is the affected principal;
// Other is the counterparty when relevant (the requester for EvTickled, the
// conflicting holder for EvConflictWarning, the releasing writer for
// EvChanged).
type Event struct {
	Type  EventType
	Path  Path
	Who   string
	Other string
	Mode  Mode
	At    time.Duration
}

// Errors returned by the manager.
var (
	ErrNotHolder  = errors.New("locks: caller does not hold the lock")
	ErrReentrant  = errors.New("locks: caller already holds or queued for the lock")
	ErrBadRequest = errors.New("locks: invalid request")
)

// Result reports the outcome of an acquire.
type Result struct {
	Granted bool
	Queued  bool
	// Warned is set when a soft-lock acquire overlapped an existing holder.
	Warned bool
}
