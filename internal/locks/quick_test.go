package locks

import (
	"math/rand"
	"testing"
	"time"
)

// pathConflicts reports whether two lock paths conflict (one is an ancestor
// of or equal to the other).
func pathConflicts(a, b Path) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestRandomizedMutualExclusionInvariant drives the pessimistic manager
// with a random acquire/release workload and checks, after every step, the
// safety invariant: no two holders on conflicting paths unless both are
// shared.
func TestRandomizedMutualExclusionInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	m := NewManager(Pessimistic, Options{})
	users := []string{"u1", "u2", "u3", "u4", "u5"}

	type held struct {
		path Path
		mode Mode
	}
	holdings := map[string]*held{} // one lock per user keeps the model simple
	queued := map[string]bool{}

	// Track grants from the queue via events.
	pendingPath := map[string]held{}
	m.opts.Emit = func(e Event) {
		if e.Type == EvGranted {
			if h, ok := pendingPath[e.Who]; ok && queued[e.Who] {
				holdings[e.Who] = &held{path: h.path, mode: h.mode}
				delete(queued, e.Who)
				delete(pendingPath, e.Who)
			}
		}
	}

	randPath := func() Path {
		p := Path{"doc"}
		depth := 1 + rng.Intn(3)
		for i := 0; i < depth; i++ {
			p = append(p, string(rune('a'+rng.Intn(3))))
		}
		return p
	}

	checkInvariant := func(step int) {
		for ua, ha := range holdings {
			for ub, hb := range holdings {
				if ua >= ub {
					continue
				}
				if pathConflicts(ha.path, hb.path) && !(ha.mode == Shared && hb.mode == Shared) {
					t.Fatalf("step %d: %s(%s %s) conflicts with %s(%s %s)",
						step, ua, ha.path, ha.mode, ub, hb.path, hb.mode)
				}
			}
		}
	}

	for step := 0; step < 4000; step++ {
		u := users[rng.Intn(len(users))]
		now := time.Duration(step) * time.Millisecond
		switch {
		case holdings[u] != nil: // holding: release
			if err := m.Release(holdings[u].path, u, now); err != nil {
				t.Fatalf("step %d release: %v", step, err)
			}
			delete(holdings, u)
		case queued[u]: // waiting: nothing to do
		default: // idle: acquire
			p := randPath()
			mode := Shared
			if rng.Intn(2) == 0 {
				mode = Exclusive
			}
			pendingPath[u] = held{path: p, mode: mode}
			res, err := m.Acquire(p, u, mode, now)
			if err != nil {
				t.Fatalf("step %d acquire: %v", step, err)
			}
			if res.Granted {
				holdings[u] = &held{path: p, mode: mode}
				delete(pendingPath, u)
			} else {
				queued[u] = true
			}
		}
		checkInvariant(step)
	}
	// Drain: release everything, everyone queued must eventually grant.
	for u, h := range holdings {
		m.Release(h.path, u, time.Hour)
		delete(holdings, u)
	}
	for u := range queued {
		_ = u // grants happened via emit; holdings updated there
	}
	checkInvariant(-1)
	if m.QueueLength() != 0 && len(holdings) == 0 {
		// Queue can only be non-empty if grants chained into new conflicts
		// among the queued themselves, which drainQueue resolves greedily —
		// with all locks released, nothing may remain.
		// (holdings map was refilled by emit for queued grants.)
		remaining := m.QueueLength()
		granted := 0
		for range holdings {
			granted++
		}
		if remaining > 0 && granted == 0 {
			t.Fatalf("queue stuck at %d with nothing held", remaining)
		}
	}
}

// TestQueuedWaiterCancelKeepsInvariant mixes in waiter cancellation.
func TestQueuedWaiterCancelKeepsInvariant(t *testing.T) {
	m := NewManager(Pessimistic, Options{})
	if _, err := m.Acquire(Path{"d"}, "a", Exclusive, 0); err != nil {
		t.Fatal(err)
	}
	for _, u := range []string{"b", "c", "d"} {
		if _, err := m.Acquire(Path{"d"}, u, Exclusive, 0); err != nil {
			t.Fatal(err)
		}
	}
	if n := m.CancelWaiters("c"); n != 1 {
		t.Fatalf("cancelled %d", n)
	}
	m.Release(Path{"d"}, "a", 1)
	if got := m.HoldersOf(Path{"d"}); len(got) != 1 || got[0] != "b" {
		t.Fatalf("holders = %v", got)
	}
	m.Release(Path{"d"}, "b", 2)
	if got := m.HoldersOf(Path{"d"}); len(got) != 1 || got[0] != "d" {
		t.Fatalf("holders = %v (c was cancelled)", got)
	}
}
