package locks

import (
	"fmt"
	"sort"
	"time"
)

// Options configures a Manager.
type Options struct {
	// TickleIdle is how long a holder may be idle before a tickle
	// dispossesses it (Tickle discipline only). Zero means holders are
	// dispossessed on any tickle.
	TickleIdle time.Duration
	// Emit receives lock events; nil discards them.
	Emit func(Event)
}

// Stats aggregates manager activity for the experiment harnesses.
type Stats struct {
	Acquires     int
	Grants       int // immediate grants
	Queues       int
	QueueGrants  int // grants made later, off the queue
	Conflicts    int // acquire attempts that met a conflicting holder
	Revocations  int // tickle transfers
	Warnings     int // soft-lock conflict warnings (one per overlapping pair)
	ChangeNotifs int // notification-lock change events delivered
	TotalWait    time.Duration
}

// MeanWait returns the mean queue wait across queue grants.
func (s Stats) MeanWait() time.Duration {
	if s.QueueGrants == 0 {
		return 0
	}
	return s.TotalWait / time.Duration(s.QueueGrants)
}

type holding struct {
	who       string
	mode      Mode
	lastTouch time.Duration
}

type node struct {
	name     string
	parent   *node
	children map[string]*node
	holders  map[string]*holding
	watchers map[string]bool // notification-discipline registered readers
	// subtree holder counts (including this node), by mode, for fast
	// descendant-conflict short-circuiting.
	subShared int
	subExcl   int
}

func (n *node) child(name string) *node {
	c, ok := n.children[name]
	if !ok {
		c = &node{name: name, parent: n, children: make(map[string]*node), holders: make(map[string]*holding), watchers: make(map[string]bool)}
		n.children[name] = c
	}
	return c
}

func (n *node) bump(mode Mode, delta int) {
	for x := n; x != nil; x = x.parent {
		if mode == Shared {
			x.subShared += delta
		} else {
			x.subExcl += delta
		}
	}
}

type waiter struct {
	path  Path
	node  *node
	who   string
	mode  Mode
	since time.Duration
}

// Manager is a hierarchical lock manager with a selectable discipline. It is
// not safe for concurrent use; the layers above serialize access (over
// netsim everything runs on the simulator goroutine).
type Manager struct {
	discipline Discipline
	opts       Options
	root       *node
	waiters    []*waiter
	stats      Stats
}

// NewManager creates a lock manager with the given discipline.
func NewManager(d Discipline, opts Options) *Manager {
	return &Manager{
		discipline: d,
		opts:       opts,
		root:       &node{children: make(map[string]*node), holders: make(map[string]*holding), watchers: make(map[string]bool)},
	}
}

// Discipline returns the manager's lock discipline.
func (m *Manager) Discipline() Discipline { return m.discipline }

// Stats returns a copy of the accumulated statistics.
func (m *Manager) Stats() Stats { return m.stats }

func (m *Manager) emit(e Event) {
	if m.opts.Emit != nil {
		m.opts.Emit(e)
	}
}

func (m *Manager) locate(p Path) *node {
	n := m.root
	for _, seg := range p {
		n = n.child(seg)
	}
	return n
}

func compatible(a, b Mode) bool { return a == Shared && b == Shared }

// conflictsFor collects holders that conflict with a request by who at n
// with the given mode: incompatible holders at n itself, on any ancestor,
// or anywhere in n's subtree.
func (m *Manager) conflictsFor(n *node, who string, mode Mode) []*nodeHolder {
	var out []*nodeHolder
	add := func(x *node) {
		// Sorted holder order: the conflict list drives wound/wait and
		// tickle decisions, so its order must not depend on map iteration.
		whos := make([]string, 0, len(x.holders))
		for w := range x.holders {
			whos = append(whos, w)
		}
		sort.Strings(whos)
		for _, w := range whos {
			if h := x.holders[w]; h.who != who && !compatible(mode, h.mode) {
				out = append(out, &nodeHolder{node: x, holding: h})
			}
		}
	}
	// Ancestors (excluding n).
	for x := n.parent; x != nil; x = x.parent {
		add(x)
	}
	// Subtree (including n), pruned by the mode-aware counters.
	var walk func(x *node)
	walk = func(x *node) {
		if mode == Shared && x.subExcl == 0 {
			return // only exclusive holders can conflict with a shared request
		}
		if x.subShared+x.subExcl == 0 {
			return
		}
		add(x)
		for _, c := range x.children {
			walk(c)
		}
	}
	walk(n)
	sort.Slice(out, func(i, j int) bool { return out[i].holding.who < out[j].holding.who })
	return out
}

type nodeHolder struct {
	node    *node
	holding *holding
}

// Acquire requests the lock at path p for principal who. The semantics of a
// conflicting request depend on the discipline; see the package comment.
func (m *Manager) Acquire(p Path, who string, mode Mode, now time.Duration) (Result, error) {
	if len(p) == 0 || who == "" || (mode != Shared && mode != Exclusive) {
		return Result{}, fmt.Errorf("%w: path=%q who=%q mode=%d", ErrBadRequest, p.String(), who, mode)
	}
	n := m.locate(p)
	if _, held := n.holders[who]; held {
		return Result{}, fmt.Errorf("%w: %s at %s", ErrReentrant, who, p)
	}
	for _, w := range m.waiters {
		if w.node == n && w.who == who {
			return Result{}, fmt.Errorf("%w: %s queued at %s", ErrReentrant, who, p)
		}
	}
	m.stats.Acquires++
	conflicts := m.conflictsFor(n, who, mode)
	if len(conflicts) == 0 {
		m.grant(n, p, who, mode, now, false, 0)
		return Result{Granted: true}, nil
	}
	m.stats.Conflicts++

	switch m.discipline {
	case Soft:
		// Advisory: always grant, warn both parties of each overlap.
		for _, c := range conflicts {
			m.stats.Warnings++
			m.emit(Event{Type: EvConflictWarning, Path: p, Who: who, Other: c.holding.who, Mode: mode, At: now})
			m.emit(Event{Type: EvConflictWarning, Path: p, Who: c.holding.who, Other: who, Mode: c.holding.mode, At: now})
		}
		m.grant(n, p, who, mode, now, false, 0)
		return Result{Granted: true, Warned: true}, nil

	case Notification:
		if mode == Shared {
			// Readers proceed; register for change notification against the
			// conflicting writers' nodes.
			for _, c := range conflicts {
				c.node.watchers[who] = true
			}
			m.grant(n, p, who, mode, now, false, 0)
			return Result{Granted: true, Warned: true}, nil
		}
		m.enqueue(n, p, who, mode, now)
		return Result{Queued: true}, nil

	case Tickle:
		allIdle := true
		for _, c := range conflicts {
			if now-c.holding.lastTouch < m.opts.TickleIdle {
				allIdle = false
			}
		}
		if allIdle {
			for _, c := range conflicts {
				m.stats.Revocations++
				delete(c.node.holders, c.holding.who)
				c.node.bump(c.holding.mode, -1)
				m.emit(Event{Type: EvRevoked, Path: pathOf(c.node), Who: c.holding.who, Other: who, Mode: c.holding.mode, At: now})
			}
			m.grant(n, p, who, mode, now, false, 0)
			return Result{Granted: true}, nil
		}
		for _, c := range conflicts {
			m.emit(Event{Type: EvTickled, Path: pathOf(c.node), Who: c.holding.who, Other: who, Mode: c.holding.mode, At: now})
		}
		m.enqueue(n, p, who, mode, now)
		return Result{Queued: true}, nil

	default: // Pessimistic
		m.enqueue(n, p, who, mode, now)
		return Result{Queued: true}, nil
	}
}

func pathOf(n *node) Path {
	var segs []string
	for x := n; x != nil && x.parent != nil; x = x.parent {
		segs = append(segs, x.name)
	}
	// reverse
	for i, j := 0, len(segs)-1; i < j; i, j = i+1, j-1 {
		segs[i], segs[j] = segs[j], segs[i]
	}
	return Path(segs)
}

func (m *Manager) grant(n *node, p Path, who string, mode Mode, now time.Duration, fromQueue bool, since time.Duration) {
	n.holders[who] = &holding{who: who, mode: mode, lastTouch: now}
	n.bump(mode, +1)
	if fromQueue {
		m.stats.QueueGrants++
		m.stats.TotalWait += now - since
	} else {
		m.stats.Grants++
	}
	m.emit(Event{Type: EvGranted, Path: p, Who: who, Mode: mode, At: now})
}

func (m *Manager) enqueue(n *node, p Path, who string, mode Mode, now time.Duration) {
	m.stats.Queues++
	m.waiters = append(m.waiters, &waiter{path: p, node: n, who: who, mode: mode, since: now})
	m.emit(Event{Type: EvQueued, Path: p, Who: who, Mode: mode, At: now})
}

// Release gives up who's lock at path p. Queued compatible waiters are
// granted in FIFO order; under the Notification discipline registered
// readers are told the resource changed.
func (m *Manager) Release(p Path, who string, now time.Duration) error {
	n := m.locate(p)
	h, ok := n.holders[who]
	if !ok {
		return fmt.Errorf("%w: %s at %s", ErrNotHolder, who, p)
	}
	delete(n.holders, who)
	n.bump(h.mode, -1)
	m.emit(Event{Type: EvReleased, Path: p, Who: who, Mode: h.mode, At: now})
	if m.discipline == Notification && h.mode == Exclusive && len(n.watchers) > 0 {
		names := make([]string, 0, len(n.watchers))
		for w := range n.watchers {
			names = append(names, w)
		}
		sort.Strings(names)
		for _, w := range names {
			m.stats.ChangeNotifs++
			m.emit(Event{Type: EvChanged, Path: p, Who: w, Other: who, At: now})
		}
		n.watchers = make(map[string]bool)
	}
	m.drainQueue(now)
	return nil
}

// drainQueue grants every waiter that no longer conflicts, in FIFO order.
func (m *Manager) drainQueue(now time.Duration) {
	for {
		progressed := false
		remaining := m.waiters[:0]
		for _, w := range m.waiters {
			if len(m.conflictsFor(w.node, w.who, w.mode)) == 0 {
				m.grant(w.node, w.path, w.who, w.mode, now, true, w.since)
				progressed = true
			} else {
				remaining = append(remaining, w)
			}
		}
		m.waiters = remaining
		if !progressed {
			return
		}
	}
}

// CancelWaiters removes every queued request by who (used when a blocked
// transaction aborts) and returns how many were removed.
func (m *Manager) CancelWaiters(who string) int {
	removed := 0
	remaining := m.waiters[:0]
	for _, w := range m.waiters {
		if w.who == who {
			removed++
		} else {
			remaining = append(remaining, w)
		}
	}
	m.waiters = remaining
	return removed
}

// Touch records activity by a holder, resetting its tickle-idle timer.
func (m *Manager) Touch(p Path, who string, now time.Duration) error {
	n := m.locate(p)
	h, ok := n.holders[who]
	if !ok {
		return fmt.Errorf("%w: %s at %s", ErrNotHolder, who, p)
	}
	h.lastTouch = now
	return nil
}

// HoldersOf lists the current holders at exactly path p, sorted.
func (m *Manager) HoldersOf(p Path) []string {
	n := m.locate(p)
	out := make([]string, 0, len(n.holders))
	for who := range n.holders {
		out = append(out, who)
	}
	sort.Strings(out)
	return out
}

// QueueLength reports the number of parked waiters.
func (m *Manager) QueueLength() int { return len(m.waiters) }
