package locks

import (
	"errors"
	"testing"
	"time"
)

type recorder struct {
	events []Event
}

func (r *recorder) emit(e Event) { r.events = append(r.events, e) }

func (r *recorder) ofType(t EventType) []Event {
	var out []Event
	for _, e := range r.events {
		if e.Type == t {
			out = append(out, e)
		}
	}
	return out
}

func newMgr(d Discipline, idle time.Duration) (*Manager, *recorder) {
	r := &recorder{}
	return NewManager(d, Options{TickleIdle: idle, Emit: r.emit}), r
}

var (
	doc  = Path{"doc"}
	sec1 = Path{"doc", "s1"}
	sec2 = Path{"doc", "s2"}
	par  = Path{"doc", "s1", "p1"}
)

func mustAcquire(t *testing.T, m *Manager, p Path, who string, mode Mode, now time.Duration) Result {
	t.Helper()
	res, err := m.Acquire(p, who, mode, now)
	if err != nil {
		t.Fatalf("Acquire(%s,%s): %v", p, who, err)
	}
	return res
}

func TestPessimisticExclusiveConflict(t *testing.T) {
	m, r := newMgr(Pessimistic, 0)
	if res := mustAcquire(t, m, sec1, "alice", Exclusive, 0); !res.Granted {
		t.Fatal("first acquire should grant")
	}
	res := mustAcquire(t, m, sec1, "bob", Exclusive, time.Second)
	if !res.Queued || res.Granted {
		t.Fatalf("conflicting acquire = %+v, want queued", res)
	}
	if err := m.Release(sec1, "alice", 2*time.Second); err != nil {
		t.Fatal(err)
	}
	grants := r.ofType(EvGranted)
	if len(grants) != 2 || grants[1].Who != "bob" {
		t.Fatalf("grants = %+v", grants)
	}
	st := m.Stats()
	if st.QueueGrants != 1 || st.MeanWait() != time.Second {
		t.Errorf("stats = %+v, mean wait %v", st, st.MeanWait())
	}
}

func TestSharedCompatible(t *testing.T) {
	m, _ := newMgr(Pessimistic, 0)
	mustAcquire(t, m, sec1, "alice", Shared, 0)
	res := mustAcquire(t, m, sec1, "bob", Shared, 0)
	if !res.Granted {
		t.Fatal("shared+shared should grant")
	}
	res = mustAcquire(t, m, sec1, "carol", Exclusive, 0)
	if !res.Queued {
		t.Fatal("exclusive over shared should queue")
	}
	m.Release(sec1, "alice", 0)
	if got := m.HoldersOf(sec1); len(got) != 1 || got[0] != "bob" {
		t.Fatalf("holders = %v", got)
	}
	m.Release(sec1, "bob", 0)
	if got := m.HoldersOf(sec1); len(got) != 1 || got[0] != "carol" {
		t.Fatalf("carol should be granted now, holders = %v", got)
	}
}

func TestHierarchyAncestorConflict(t *testing.T) {
	m, _ := newMgr(Pessimistic, 0)
	mustAcquire(t, m, doc, "alice", Exclusive, 0)
	res := mustAcquire(t, m, par, "bob", Exclusive, 0)
	if !res.Queued {
		t.Fatal("descendant of exclusively-held ancestor should queue")
	}
}

func TestHierarchyDescendantConflict(t *testing.T) {
	m, _ := newMgr(Pessimistic, 0)
	mustAcquire(t, m, par, "alice", Exclusive, 0)
	res := mustAcquire(t, m, doc, "bob", Exclusive, 0)
	if !res.Queued {
		t.Fatal("ancestor of exclusively-held descendant should queue")
	}
	// Sibling subtree is free.
	res = mustAcquire(t, m, sec2, "carol", Exclusive, 0)
	if !res.Granted {
		t.Fatal("sibling section should be free")
	}
}

func TestSharedAncestorExclusiveDescendant(t *testing.T) {
	m, _ := newMgr(Pessimistic, 0)
	mustAcquire(t, m, doc, "alice", Shared, 0)
	// A shared ancestor blocks an exclusive descendant...
	res := mustAcquire(t, m, sec1, "bob", Exclusive, 0)
	if !res.Queued {
		t.Fatal("exclusive under shared ancestor should queue")
	}
	// ...but a shared descendant is fine.
	res = mustAcquire(t, m, sec2, "carol", Shared, 0)
	if !res.Granted {
		t.Fatal("shared under shared should grant")
	}
}

func TestReentrantRejected(t *testing.T) {
	m, _ := newMgr(Pessimistic, 0)
	mustAcquire(t, m, sec1, "alice", Exclusive, 0)
	if _, err := m.Acquire(sec1, "alice", Shared, 0); !errors.Is(err, ErrReentrant) {
		t.Errorf("reacquire = %v", err)
	}
	mustAcquire(t, m, sec1, "bob", Exclusive, 0) // queued
	if _, err := m.Acquire(sec1, "bob", Exclusive, 0); !errors.Is(err, ErrReentrant) {
		t.Errorf("requeue = %v", err)
	}
}

func TestReleaseNotHolder(t *testing.T) {
	m, _ := newMgr(Pessimistic, 0)
	if err := m.Release(sec1, "ghost", 0); !errors.Is(err, ErrNotHolder) {
		t.Errorf("Release = %v", err)
	}
	if err := m.Touch(sec1, "ghost", 0); !errors.Is(err, ErrNotHolder) {
		t.Errorf("Touch = %v", err)
	}
}

func TestBadRequest(t *testing.T) {
	m, _ := newMgr(Pessimistic, 0)
	if _, err := m.Acquire(nil, "a", Shared, 0); !errors.Is(err, ErrBadRequest) {
		t.Errorf("nil path = %v", err)
	}
	if _, err := m.Acquire(sec1, "", Shared, 0); !errors.Is(err, ErrBadRequest) {
		t.Errorf("empty who = %v", err)
	}
	if _, err := m.Acquire(sec1, "a", Mode(9), 0); !errors.Is(err, ErrBadRequest) {
		t.Errorf("bad mode = %v", err)
	}
}

func TestTickleIdleHolderDispossessed(t *testing.T) {
	m, r := newMgr(Tickle, 10*time.Second)
	mustAcquire(t, m, sec1, "alice", Exclusive, 0)
	// Alice idle for 30s; Bob's request transfers the lock.
	res := mustAcquire(t, m, sec1, "bob", Exclusive, 30*time.Second)
	if !res.Granted {
		t.Fatalf("tickle of idle holder = %+v, want granted", res)
	}
	revoked := r.ofType(EvRevoked)
	if len(revoked) != 1 || revoked[0].Who != "alice" || revoked[0].Other != "bob" {
		t.Fatalf("revocations = %+v", revoked)
	}
	if got := m.HoldersOf(sec1); len(got) != 1 || got[0] != "bob" {
		t.Fatalf("holders = %v", got)
	}
}

func TestTickleActiveHolderKeepsLock(t *testing.T) {
	m, r := newMgr(Tickle, 10*time.Second)
	mustAcquire(t, m, sec1, "alice", Exclusive, 0)
	m.Touch(sec1, "alice", 25*time.Second)
	res := mustAcquire(t, m, sec1, "bob", Exclusive, 30*time.Second)
	if !res.Queued {
		t.Fatalf("tickle of active holder = %+v, want queued", res)
	}
	tickled := r.ofType(EvTickled)
	if len(tickled) != 1 || tickled[0].Who != "alice" || tickled[0].Other != "bob" {
		t.Fatalf("tickles = %+v", tickled)
	}
	// Alice finishes; Bob gets the lock from the queue.
	m.Release(sec1, "alice", 40*time.Second)
	if got := m.HoldersOf(sec1); len(got) != 1 || got[0] != "bob" {
		t.Fatalf("holders = %v", got)
	}
}

func TestSoftAlwaysGrantsWithWarnings(t *testing.T) {
	m, r := newMgr(Soft, 0)
	mustAcquire(t, m, sec1, "alice", Exclusive, 0)
	res := mustAcquire(t, m, sec1, "bob", Exclusive, 0)
	if !res.Granted || !res.Warned {
		t.Fatalf("soft conflicting acquire = %+v", res)
	}
	warns := r.ofType(EvConflictWarning)
	if len(warns) != 2 {
		t.Fatalf("warnings = %+v, want one to each party", warns)
	}
	if got := m.HoldersOf(sec1); len(got) != 2 {
		t.Fatalf("holders = %v, soft locks coexist", got)
	}
	if m.Stats().Warnings != 1 {
		t.Errorf("warning pairs = %d", m.Stats().Warnings)
	}
}

func TestNotificationReadersNeverBlock(t *testing.T) {
	m, r := newMgr(Notification, 0)
	mustAcquire(t, m, sec1, "writer", Exclusive, 0)
	res := mustAcquire(t, m, sec1, "reader1", Shared, time.Second)
	if !res.Granted {
		t.Fatalf("reader over writer = %+v, want granted (notification locks)", res)
	}
	res = mustAcquire(t, m, sec1, "reader2", Shared, time.Second)
	if !res.Granted {
		t.Fatal("second reader should also proceed")
	}
	// Writer releases: registered readers hear about the change.
	m.Release(sec1, "writer", 2*time.Second)
	changed := r.ofType(EvChanged)
	if len(changed) != 2 {
		t.Fatalf("changed events = %+v", changed)
	}
	names := map[string]bool{}
	for _, e := range changed {
		names[e.Who] = true
		if e.Other != "writer" {
			t.Errorf("changed.Other = %q", e.Other)
		}
	}
	if !names["reader1"] || !names["reader2"] {
		t.Errorf("notified readers = %v", names)
	}
	if m.Stats().ChangeNotifs != 2 {
		t.Errorf("ChangeNotifs = %d", m.Stats().ChangeNotifs)
	}
}

func TestNotificationWritersQueue(t *testing.T) {
	m, _ := newMgr(Notification, 0)
	mustAcquire(t, m, sec1, "w1", Exclusive, 0)
	res := mustAcquire(t, m, sec1, "w2", Exclusive, 0)
	if !res.Queued {
		t.Fatal("second writer should queue even under notification locks")
	}
}

func TestQueueFIFO(t *testing.T) {
	m, r := newMgr(Pessimistic, 0)
	mustAcquire(t, m, sec1, "a", Exclusive, 0)
	mustAcquire(t, m, sec1, "b", Exclusive, 1)
	mustAcquire(t, m, sec1, "c", Exclusive, 2)
	m.Release(sec1, "a", 3)
	m.Release(sec1, "b", 4)
	m.Release(sec1, "c", 5)
	var order []string
	for _, e := range r.ofType(EvGranted) {
		order = append(order, e.Who)
	}
	want := []string{"a", "b", "c"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("grant order = %v", order)
		}
	}
	if m.QueueLength() != 0 {
		t.Errorf("queue length = %d", m.QueueLength())
	}
}

func TestDrainGrantsMultipleShared(t *testing.T) {
	m, _ := newMgr(Pessimistic, 0)
	mustAcquire(t, m, sec1, "w", Exclusive, 0)
	mustAcquire(t, m, sec1, "r1", Shared, 0)
	mustAcquire(t, m, sec1, "r2", Shared, 0)
	m.Release(sec1, "w", 1)
	if got := m.HoldersOf(sec1); len(got) != 2 {
		t.Fatalf("both readers should be granted, holders = %v", got)
	}
}

func TestPathAndEnumStrings(t *testing.T) {
	if par.String() != "doc/s1/p1" {
		t.Errorf("Path.String = %q", par.String())
	}
	if Pessimistic.String() != "pessimistic" || Tickle.String() != "tickle" ||
		Soft.String() != "soft" || Notification.String() != "notification" {
		t.Error("discipline names")
	}
	if Shared.String() != "shared" || Exclusive.String() != "exclusive" {
		t.Error("mode names")
	}
	if GrainDocument.Depth() != 1 || GrainWord.Depth() != 5 {
		t.Error("granularity depth")
	}
	if GrainParagraph.String() != "paragraph" {
		t.Error("granularity names")
	}
	if EvGranted.String() != "granted" || EvChanged.String() != "changed" {
		t.Error("event names")
	}
}

func BenchmarkAcquireReleaseFlat(b *testing.B) {
	m := NewManager(Pessimistic, Options{})
	p := Path{"doc", "s1", "p1", "w5"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		now := time.Duration(i)
		if _, err := m.Acquire(p, "u", Exclusive, now); err != nil {
			b.Fatal(err)
		}
		if err := m.Release(p, "u", now); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAcquireContendedHierarchy(b *testing.B) {
	m := NewManager(Soft, Options{})
	// Pre-populate many word-level holders, then acquire at document level,
	// exercising the subtree scan.
	for i := 0; i < 200; i++ {
		p := Path{"doc", "s1", "p1", "w" + string(rune('a'+i%26)), string(rune('0' + i%10))}
		m.Acquire(p, "holder", Shared, 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Acquire(doc, "scanner", Exclusive, time.Duration(i))
		m.Release(doc, "scanner", time.Duration(i))
	}
}
