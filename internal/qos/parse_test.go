package qos

import (
	"testing"
	"time"
)

func TestParseFull(t *testing.T) {
	p, err := Parse("tput>=8kB/s lat<=50ms jit<=10ms loss<=1% disc<=30s")
	if err != nil {
		t.Fatal(err)
	}
	if p.Throughput != 8000 {
		t.Errorf("tput = %d", p.Throughput)
	}
	if p.Latency != 50*time.Millisecond || p.Jitter != 10*time.Millisecond {
		t.Errorf("lat/jit = %v/%v", p.Latency, p.Jitter)
	}
	if p.Loss != 0.01 {
		t.Errorf("loss = %v", p.Loss)
	}
	if p.MaxDisconnect != 30*time.Second {
		t.Errorf("disc = %v", p.MaxDisconnect)
	}
}

func TestParseVariants(t *testing.T) {
	cases := map[string]Params{
		"":                  {},
		"tput>=1.5MB/s":     {Throughput: 1_500_000},
		"tput>=500":         {Throughput: 500},
		"tput>=500B/s":      {Throughput: 500},
		"loss<=0.25":        {Loss: 0.25},
		"latency<=1s":       {Latency: time.Second},
		"jitter<=250µs":     {Jitter: 250 * time.Microsecond},
		"disconnect<=2m":    {MaxDisconnect: 2 * time.Minute},
		"throughput>=2kB/s": {Throughput: 2000},
	}
	for in, want := range cases {
		got, err := Parse(in)
		if err != nil {
			t.Errorf("Parse(%q): %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("Parse(%q) = %+v, want %+v", in, got, want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{
		"tput<=100",  // floor with ceiling operator
		"lat>=10ms",  // ceiling with floor operator
		"loss<=150%", // out of range
		"loss<=-0.1", // negative
		"lat<=-5ms",  // negative duration
		"blah<=10",   // unknown clause
		"lat=10ms",   // missing operator
		"tput>=fast", // bad number
		"lat<=alot",  // bad duration
	} {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) should fail", in)
		}
	}
}

func TestParseRoundTripThroughString(t *testing.T) {
	orig := Params{Throughput: 8000, Latency: 50 * time.Millisecond, Jitter: 10 * time.Millisecond, Loss: 0.01, MaxDisconnect: 30 * time.Second}
	// Params.String renders loss with 3 decimals and durations in Go form —
	// both parse back.
	back, err := Parse(orig.String())
	if err != nil {
		t.Fatal(err)
	}
	if back != orig {
		t.Errorf("round trip: %+v -> %q -> %+v", orig, orig.String(), back)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse on garbage should panic")
		}
	}()
	MustParse("nonsense<=banana")
}

func TestMustParseOK(t *testing.T) {
	p := MustParse("lat<=5ms")
	if p.Latency != 5*time.Millisecond {
		t.Errorf("p = %+v", p)
	}
}
