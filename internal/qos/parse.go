package qos

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Parse reads the textual QoS annotation syntax used on interface
// definitions — the paper's requirement that QoS properties be *expressed*
// on interfaces in a form people can read and tools can check. The syntax
// matches what Params.String produces:
//
//	tput>=8000B/s lat<=50ms jit<=10ms loss<=0.01 disc<=30s
//
// Clauses may appear in any order and any subset; loss also accepts a
// percentage ("loss<=1%"). Unknown clauses are errors.
func Parse(s string) (Params, error) {
	var p Params
	for _, tok := range strings.Fields(s) {
		key, val, op, err := splitClause(tok)
		if err != nil {
			return Params{}, err
		}
		switch key {
		case "tput", "throughput":
			if op != ">=" {
				return Params{}, fmt.Errorf("qos: throughput is a floor; use >= in %q", tok)
			}
			n, err := parseRate(val)
			if err != nil {
				return Params{}, fmt.Errorf("qos: %q: %w", tok, err)
			}
			p.Throughput = n
		case "lat", "latency":
			d, err := parseCeilingDuration(op, val, tok)
			if err != nil {
				return Params{}, err
			}
			p.Latency = d
		case "jit", "jitter":
			d, err := parseCeilingDuration(op, val, tok)
			if err != nil {
				return Params{}, err
			}
			p.Jitter = d
		case "disc", "disconnect":
			d, err := parseCeilingDuration(op, val, tok)
			if err != nil {
				return Params{}, err
			}
			p.MaxDisconnect = d
		case "loss":
			if op != "<=" {
				return Params{}, fmt.Errorf("qos: loss is a ceiling; use <= in %q", tok)
			}
			f, err := parseLoss(val)
			if err != nil {
				return Params{}, fmt.Errorf("qos: %q: %w", tok, err)
			}
			p.Loss = f
		default:
			return Params{}, fmt.Errorf("qos: unknown clause %q", tok)
		}
	}
	return p, nil
}

// MustParse is Parse for static annotations; it panics on error (use only
// for literals in program setup).
func MustParse(s string) Params {
	p, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return p
}

func splitClause(tok string) (key, val, op string, err error) {
	for _, candidate := range []string{">=", "<="} {
		if i := strings.Index(tok, candidate); i > 0 {
			return tok[:i], tok[i+len(candidate):], candidate, nil
		}
	}
	return "", "", "", fmt.Errorf("qos: clause %q needs >= or <=", tok)
}

// parseRate reads "8000B/s", "8kB/s", "1.5MB/s" or a bare byte count.
func parseRate(s string) (int64, error) {
	s = strings.TrimSuffix(s, "/s")
	mult := float64(1)
	switch {
	case strings.HasSuffix(s, "kB"):
		mult, s = 1e3, strings.TrimSuffix(s, "kB")
	case strings.HasSuffix(s, "MB"):
		mult, s = 1e6, strings.TrimSuffix(s, "MB")
	case strings.HasSuffix(s, "B"):
		s = strings.TrimSuffix(s, "B")
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad rate: %w", err)
	}
	if f < 0 {
		return 0, fmt.Errorf("negative rate %v", f)
	}
	return int64(f * mult), nil
}

func parseCeilingDuration(op, val, tok string) (time.Duration, error) {
	if op != "<=" {
		return 0, fmt.Errorf("qos: %s is a ceiling; use <= in %q", tok, tok)
	}
	d, err := time.ParseDuration(val)
	if err != nil {
		return 0, fmt.Errorf("qos: %q: %w", tok, err)
	}
	if d < 0 {
		return 0, fmt.Errorf("qos: negative duration in %q", tok)
	}
	return d, nil
}

func parseLoss(s string) (float64, error) {
	pct := strings.HasSuffix(s, "%")
	s = strings.TrimSuffix(s, "%")
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if pct {
		f /= 100
	}
	if f < 0 || f > 1 {
		return 0, fmt.Errorf("loss %v out of [0,1]", f)
	}
	return f, nil
}
