package qos

import (
	"errors"
	"testing"
	"testing/quick"
	"time"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func TestSatisfiesBasics(t *testing.T) {
	offer := Params{Throughput: 1000, Latency: ms(50), Jitter: ms(10), Loss: 0.01}
	tests := []struct {
		name string
		req  Params
		want bool
	}{
		{"unconstrained", Params{}, true},
		{"met exactly", Params{Throughput: 1000, Latency: ms(50), Jitter: ms(10), Loss: 0.01}, true},
		{"comfortably met", Params{Throughput: 500, Latency: ms(100)}, true},
		{"throughput too low", Params{Throughput: 2000}, false},
		{"latency too high", Params{Latency: ms(20)}, false},
		{"jitter too high", Params{Jitter: ms(5)}, false},
		{"loss too high", Params{Loss: 0.001}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := offer.Satisfies(tt.req); got != tt.want {
				t.Errorf("Satisfies = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestSatisfiesUnboundedOfferFailsCeilings(t *testing.T) {
	offer := Params{Throughput: 1000} // promises nothing about latency
	if offer.Satisfies(Params{Latency: ms(10)}) {
		t.Error("offer with no latency promise cannot satisfy a latency bound")
	}
	if offer.Satisfies(Params{Jitter: ms(10)}) {
		t.Error("offer with no jitter promise cannot satisfy a jitter bound")
	}
}

func TestSatisfiesDisconnect(t *testing.T) {
	offer := Params{MaxDisconnect: time.Minute}
	if !offer.Satisfies(Params{MaxDisconnect: 2 * time.Minute}) {
		t.Error("1min gaps satisfy a 2min tolerance")
	}
	if offer.Satisfies(Params{MaxDisconnect: time.Second}) {
		t.Error("1min gaps exceed a 1s tolerance")
	}
}

func TestNegotiatePicksBestFeasible(t *testing.T) {
	offers := []Params{
		{Throughput: 200_000, Latency: ms(100), Jitter: ms(60), Loss: 0.05}, // HQ
		{Throughput: 50_000, Latency: ms(100), Jitter: ms(60), Loss: 0.05},  // MQ
		{Throughput: 10_000, Latency: ms(200), Jitter: ms(120), Loss: 0.10}, // LQ
	}
	capability := Params{Throughput: 60_000, Latency: ms(80), Jitter: ms(40), Loss: 0.01}
	req := Params{Throughput: 20_000, Latency: ms(300)}
	got, err := Negotiate(offers, capability, req)
	if err != nil {
		t.Fatal(err)
	}
	if got.Throughput != 50_000 {
		t.Errorf("agreed tier = %v, want the 50kB/s tier", got)
	}
}

func TestNegotiateNoAgreement(t *testing.T) {
	offers := []Params{{Throughput: 100_000, Latency: ms(50), Jitter: ms(10)}}
	capability := Params{Throughput: 1_000, Latency: ms(500), Jitter: ms(200)}
	if _, err := Negotiate(offers, capability, Params{}); !errors.Is(err, ErrNoAgreement) {
		t.Errorf("err = %v", err)
	}
	// Requirement stricter than any offer.
	capability = Params{Throughput: 1_000_000, Latency: ms(1), Jitter: ms(1)}
	if _, err := Negotiate(offers, capability, Params{Throughput: 500_000}); !errors.Is(err, ErrNoAgreement) {
		t.Errorf("err = %v", err)
	}
}

func TestMonitorCleanWindow(t *testing.T) {
	m := NewMonitor(Params{Throughput: 100, Latency: ms(50), Jitter: ms(20), Loss: 0.1}, time.Second)
	// 10 frames, 20 bytes each, 10ms latency, 100ms apart.
	for i := 0; i < 10; i++ {
		gen := time.Duration(i) * ms(100)
		m.Arrive(gen, gen+ms(10), 20)
	}
	m.Expect(10)
	rep, vs := m.Roll(time.Second)
	if len(vs) != 0 {
		t.Fatalf("violations = %+v", vs)
	}
	if rep.Frames != 10 || rep.Bytes != 200 || rep.Throughput != 200 {
		t.Errorf("report = %+v", rep)
	}
	if rep.MeanLat != ms(10) || rep.Jitter != 0 || rep.Loss != 0 {
		t.Errorf("report = %+v", rep)
	}
}

func TestMonitorViolations(t *testing.T) {
	m := NewMonitor(Params{Throughput: 10_000, Latency: ms(50), Jitter: ms(5), Loss: 0.05, MaxDisconnect: ms(300)}, time.Second)
	// Two frames: one slow (80ms), long gap, low volume, half expected lost.
	m.Arrive(0, ms(10), 100)
	m.Arrive(ms(500), ms(580), 100) // latency 80ms, gap 570ms
	m.Expect(4)
	_, vs := m.Roll(time.Second)
	fields := map[string]bool{}
	for _, v := range vs {
		fields[v.Field] = true
	}
	for _, want := range []string{"throughput", "latency", "jitter", "loss", "disconnect"} {
		if !fields[want] {
			t.Errorf("missing violation %q in %+v", want, vs)
		}
	}
}

func TestMonitorWindowReset(t *testing.T) {
	m := NewMonitor(Params{Loss: 0.5}, time.Second)
	m.Expect(10) // nothing arrives: 100% loss
	_, vs := m.Roll(time.Second)
	if len(vs) != 1 || vs[0].Field != "loss" {
		t.Fatalf("vs = %+v", vs)
	}
	// Next window is clean.
	m.Arrive(ms(1100), ms(1110), 10)
	m.Expect(1)
	_, vs = m.Roll(2 * time.Second)
	if len(vs) != 0 {
		t.Errorf("second window violations = %+v", vs)
	}
}

func TestMonitorGapAcrossWindows(t *testing.T) {
	m := NewMonitor(Params{MaxDisconnect: ms(100)}, time.Second)
	m.Arrive(0, ms(10), 1)
	m.Roll(time.Second)
	// Next arrival is 1.5s after the previous one, in the next window.
	m.Arrive(ms(1500), ms(1510), 1)
	_, vs := m.Roll(2 * time.Second)
	if len(vs) != 1 || vs[0].Field != "disconnect" {
		t.Errorf("cross-window gap not detected: %+v", vs)
	}
}

func TestMonitorSetContract(t *testing.T) {
	m := NewMonitor(Params{Latency: ms(10)}, time.Second)
	m.Arrive(0, ms(30), 1)
	_, vs := m.Roll(time.Second)
	if len(vs) != 1 {
		t.Fatal("expected latency violation")
	}
	// Renegotiated down: same behaviour now acceptable.
	m.SetContract(Params{Latency: ms(100)})
	m.Arrive(ms(1100), ms(1130), 1)
	_, vs = m.Roll(2 * time.Second)
	if len(vs) != 0 {
		t.Errorf("violations after renegotiation = %+v", vs)
	}
}

func TestQuickSatisfiesReflexive(t *testing.T) {
	// Property: any fully-specified vector satisfies itself.
	f := func(tput uint16, lat, jit uint8, loss uint8) bool {
		p := Params{
			Throughput:    int64(tput) + 1,
			Latency:       time.Duration(lat+1) * time.Millisecond,
			Jitter:        time.Duration(jit+1) * time.Millisecond,
			Loss:          float64(loss) / 512,
			MaxDisconnect: time.Duration(lat+1) * time.Second,
		}
		return p.Satisfies(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickSatisfiesTransitive(t *testing.T) {
	// Property: if a satisfies b and b satisfies c then a satisfies c, for
	// fully-specified vectors (the compatibility partial order).
	mk := func(tput uint16, lat, jit uint8) Params {
		return Params{
			Throughput: int64(tput) + 1,
			Latency:    time.Duration(lat+1) * time.Millisecond,
			Jitter:     time.Duration(jit+1) * time.Millisecond,
		}
	}
	f := func(t1, t2, t3 uint16, l1, l2, l3, j1, j2, j3 uint8) bool {
		a, b, c := mk(t1, l1, j1), mk(t2, l2, j2), mk(t3, l3, j3)
		if a.Satisfies(b) && b.Satisfies(c) {
			return a.Satisfies(c)
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParamsString(t *testing.T) {
	s := Params{Throughput: 5, Latency: ms(1)}.String()
	if s == "" {
		t.Error("empty String")
	}
}

func BenchmarkMonitorArriveRoll(b *testing.B) {
	m := NewMonitor(Params{Throughput: 100, Latency: ms(50)}, time.Second)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		now := time.Duration(i) * ms(10)
		m.Arrive(now, now+ms(5), 100)
		if i%100 == 99 {
			m.Roll(now)
		}
	}
}
