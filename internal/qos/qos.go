// Package qos implements quality-of-service management for continuous
// media, the paper's §4.2.2 requirement list: expression of desired QoS
// levels, compatibility checking between required and provided annotations,
// negotiation between peers, end-to-end monitoring with degradation alerts,
// and dynamic re-negotiation. The mobility extension (accepted levels of
// disconnection) appears as an explicit parameter, as §4.2.2 "the impact of
// mobility" asks.
package qos

import (
	"errors"
	"fmt"
	"time"
)

// Params is a QoS parameter vector. Throughput is a floor; the rest are
// ceilings. The zero value of a field means "unconstrained".
type Params struct {
	// Throughput is the minimum acceptable delivered rate in bytes/second.
	Throughput int64
	// Latency is the maximum acceptable end-to-end delay.
	Latency time.Duration
	// Jitter is the maximum acceptable delay variation.
	Jitter time.Duration
	// Loss is the maximum acceptable loss fraction in [0,1].
	Loss float64
	// MaxDisconnect is the longest tolerable connectivity gap (mobile
	// hosts); zero means disconnection is not tolerated at all only if
	// Latency is also set — by convention zero means unconstrained.
	MaxDisconnect time.Duration
}

// String renders the vector compactly.
func (p Params) String() string {
	return fmt.Sprintf("tput>=%dB/s lat<=%v jit<=%v loss<=%.3f disc<=%v",
		p.Throughput, p.Latency, p.Jitter, p.Loss, p.MaxDisconnect)
}

// Satisfies reports whether an offered vector p meets requirement r: at
// least the throughput, at most everything else. Unconstrained requirement
// fields (zero) always pass; an unconstrained *offer* field fails a
// constrained requirement for ceilings (the provider promises nothing).
func (p Params) Satisfies(r Params) bool {
	if r.Throughput > 0 && p.Throughput < r.Throughput {
		return false
	}
	if r.Latency > 0 && (p.Latency == 0 || p.Latency > r.Latency) {
		return false
	}
	if r.Jitter > 0 && (p.Jitter == 0 || p.Jitter > r.Jitter) {
		return false
	}
	if r.Loss > 0 && p.Loss > r.Loss {
		return false
	}
	if r.MaxDisconnect > 0 && p.MaxDisconnect > r.MaxDisconnect {
		return false
	}
	return true
}

// Errors returned by negotiation.
var ErrNoAgreement = errors.New("qos: no offer satisfies the requirement")

// Negotiate picks the first offer (offers are preference-ordered, best
// first) that the provider capability can support and that satisfies the
// consumer requirement. It returns the agreed contract. This is the
// offer/counter-offer exchange of the paper collapsed to its outcome; the
// stream binding drives it again at run time for re-negotiation.
func Negotiate(offers []Params, capability Params, requirement Params) (Params, error) {
	for _, off := range offers {
		if capability.Satisfies(off) && off.Satisfies(requirement) {
			return off, nil
		}
	}
	return Params{}, fmt.Errorf("%w: %d offers against cap %s", ErrNoAgreement, len(offers), capability)
}

// Violation describes one observed contract breach.
type Violation struct {
	Field    string // "throughput", "latency", "jitter", "loss", "disconnect"
	Observed float64
	Bound    float64
	At       time.Duration
}

// Report is the monitor's rolling observation over the current window.
type Report struct {
	Window     time.Duration
	Frames     int
	Bytes      int64
	Throughput int64         // observed bytes/second
	MeanLat    time.Duration // mean end-to-end latency
	MaxLat     time.Duration
	Jitter     time.Duration // max |latency - mean|
	Loss       float64       // fraction of expected frames missing
	LongestGap time.Duration // longest inter-arrival gap (disconnection proxy)
}

// Monitor observes a stream against a contract, window by window. Feed it
// every frame arrival; call Roll at window boundaries to obtain the report
// and any violations. The monitor is the "end-to-end monitoring of QoS so
// that the application can be informed if degradations occur".
type Monitor struct {
	contract Params
	window   time.Duration

	frames   int
	bytes    int64
	totalLat time.Duration
	maxLat   time.Duration
	minLat   time.Duration
	lastArr  time.Duration
	firstWin time.Duration
	gap      time.Duration
	expected int
	lats     []time.Duration
}

// NewMonitor creates a monitor for the contract with the given reporting
// window.
func NewMonitor(contract Params, window time.Duration) *Monitor {
	return &Monitor{contract: contract, window: window, lastArr: -1}
}

// Contract returns the monitored contract.
func (m *Monitor) Contract() Params { return m.contract }

// SetContract replaces the contract (after a re-negotiation).
func (m *Monitor) SetContract(p Params) { m.contract = p }

// Arrive records a frame arrival: when it was generated, when it arrived,
// and its size.
func (m *Monitor) Arrive(gen, now time.Duration, size int) {
	lat := now - gen
	m.frames++
	m.bytes += int64(size)
	m.totalLat += lat
	if lat > m.maxLat {
		m.maxLat = lat
	}
	if m.frames == 1 || lat < m.minLat {
		m.minLat = lat
	}
	if m.lastArr >= 0 && now-m.lastArr > m.gap {
		m.gap = now - m.lastArr
	}
	m.lastArr = now
	m.lats = append(m.lats, lat)
}

// Expect records that a frame was due in this window (for loss accounting).
func (m *Monitor) Expect(n int) { m.expected += n }

// Roll closes the current window at time now, returning the report and the
// contract violations observed. Counters reset for the next window.
func (m *Monitor) Roll(now time.Duration) (Report, []Violation) {
	r := Report{Window: m.window, Frames: m.frames, Bytes: m.bytes, LongestGap: m.gap}
	if m.frames > 0 {
		r.MeanLat = m.totalLat / time.Duration(m.frames)
		r.MaxLat = m.maxLat
		jitter := time.Duration(0)
		for _, l := range m.lats {
			d := l - r.MeanLat
			if d < 0 {
				d = -d
			}
			if d > jitter {
				jitter = d
			}
		}
		r.Jitter = jitter
	}
	if m.window > 0 {
		r.Throughput = int64(float64(m.bytes) / m.window.Seconds())
	}
	if m.expected > 0 {
		missing := m.expected - m.frames
		if missing < 0 {
			missing = 0
		}
		r.Loss = float64(missing) / float64(m.expected)
	}

	var vs []Violation
	c := m.contract
	if c.Throughput > 0 && r.Throughput < c.Throughput {
		vs = append(vs, Violation{Field: "throughput", Observed: float64(r.Throughput), Bound: float64(c.Throughput), At: now})
	}
	if c.Latency > 0 && r.MaxLat > c.Latency {
		vs = append(vs, Violation{Field: "latency", Observed: float64(r.MaxLat), Bound: float64(c.Latency), At: now})
	}
	if c.Jitter > 0 && r.Jitter > c.Jitter {
		vs = append(vs, Violation{Field: "jitter", Observed: float64(r.Jitter), Bound: float64(c.Jitter), At: now})
	}
	if c.Loss > 0 && r.Loss > c.Loss {
		vs = append(vs, Violation{Field: "loss", Observed: r.Loss, Bound: c.Loss, At: now})
	}
	if c.MaxDisconnect > 0 && r.LongestGap > c.MaxDisconnect {
		vs = append(vs, Violation{Field: "disconnect", Observed: float64(r.LongestGap), Bound: float64(c.MaxDisconnect), At: now})
	}

	// Reset for the next window, keeping lastArr so gaps spanning windows
	// are still seen.
	m.frames = 0
	m.bytes = 0
	m.totalLat = 0
	m.maxLat = 0
	m.minLat = 0
	m.gap = 0
	m.expected = 0
	m.lats = m.lats[:0]
	return r, vs
}
