package fabric

import (
	"math/rand"
	"sync"
	"time"
)

// --- metrics ------------------------------------------------------------

// Metrics collects per-hop counters and latencies for one wrapped endpoint.
// Create with NewMetrics, install with m.Middleware() inside Wrap, read
// with Snapshot. Latencies are measured against an injectable Clock
// (WallClock by default); swap it with SetClock before traffic flows to
// measure in virtual time (e.g. a netsim Sim.Now adapter), which keeps
// seeded runs deterministic.
type Metrics struct {
	mu         sync.Mutex
	clock      Clock
	bases      []Endpoint
	sent       uint64
	recv       uint64
	sendErrs   uint64
	sentBytes  uint64
	recvBytes  uint64
	sendLat    time.Duration
	handlerLat time.Duration
}

// MetricsSnapshot is a point-in-time copy of the collected counters.
type MetricsSnapshot struct {
	Sent, Recv, SendErrs uint64
	SentBytes, RecvBytes uint64
	// Dropped is probed from the wrapped chains' substrate adapters:
	// deliveries lost to no-handler overflow or decode failure, summed
	// across every endpoint this collector wraps.
	Dropped uint64
	// AvgSendLatency is wall time spent inside the inner Send (for the
	// simulator this is scheduling cost, not network latency).
	AvgSendLatency time.Duration
	// AvgHandlerLatency is wall time the application handler held a
	// delivery.
	AvgHandlerLatency time.Duration
}

// NewMetrics returns an empty collector timing against WallClock.
func NewMetrics() *Metrics { return &Metrics{clock: WallClock()} }

// SetClock replaces the latency clock (chainable). Install it before any
// traffic flows through wrapped endpoints.
func (m *Metrics) SetClock(c Clock) *Metrics {
	m.mu.Lock()
	m.clock = c
	m.mu.Unlock()
	return m
}

// now reads the configured clock.
func (m *Metrics) now() time.Duration {
	m.mu.Lock()
	c := m.clock
	m.mu.Unlock()
	return c()
}

// Middleware returns the wrapping middleware. Wrapping several endpoints
// with one Metrics instance aggregates their counts, and the drop probe
// follows every wrapped chain (summed in Snapshot).
func (m *Metrics) Middleware() Middleware {
	return func(inner Endpoint) Endpoint {
		m.mu.Lock()
		m.bases = append(m.bases, inner)
		m.mu.Unlock()
		return &metricsEndpoint{inner: inner, m: m}
	}
}

// Snapshot returns a copy of the counters, including the substrates'
// dropped counts summed across all wrapped endpoints.
func (m *Metrics) Snapshot() MetricsSnapshot {
	m.mu.Lock()
	s := MetricsSnapshot{
		Sent: m.sent, Recv: m.recv, SendErrs: m.sendErrs,
		SentBytes: m.sentBytes, RecvBytes: m.recvBytes,
	}
	if m.sent > 0 {
		s.AvgSendLatency = m.sendLat / time.Duration(m.sent)
	}
	if m.recv > 0 {
		s.AvgHandlerLatency = m.handlerLat / time.Duration(m.recv)
	}
	bases := append([]Endpoint(nil), m.bases...)
	m.mu.Unlock()
	for _, base := range bases {
		s.Dropped += DroppedOf(base)
	}
	return s
}

type metricsEndpoint struct {
	inner Endpoint
	m     *Metrics
}

func (e *metricsEndpoint) ID() string       { return e.inner.ID() }
func (e *metricsEndpoint) Unwrap() Endpoint { return e.inner }
func (e *metricsEndpoint) Close() error     { return e.inner.Close() }

func (e *metricsEndpoint) Send(to string, payload any, size int) error {
	start := e.m.now()
	err := e.inner.Send(to, payload, size)
	lat := e.m.now() - start
	e.m.mu.Lock()
	if err != nil {
		e.m.sendErrs++
	} else {
		e.m.sent++
		e.m.sentBytes += uint64(size)
		e.m.sendLat += lat
	}
	e.m.mu.Unlock()
	return err
}

func (e *metricsEndpoint) SetHandler(h Handler) {
	if h == nil {
		e.inner.SetHandler(nil)
		return
	}
	e.inner.SetHandler(func(from string, payload any, size int) {
		start := e.m.now()
		h(from, payload, size)
		lat := e.m.now() - start
		e.m.mu.Lock()
		e.m.recv++
		e.m.recvBytes += uint64(size)
		e.m.handlerLat += lat
		e.m.mu.Unlock()
	})
}

// --- fault injection ----------------------------------------------------

// Faults injects drops and delays on the send path, for exercising loss
// recovery and latency tolerance over substrates that are otherwise
// reliable. Configure with the chainable setters before traffic flows.
type Faults struct {
	mu         sync.Mutex
	rng        *rand.Rand
	dropEveryN uint64
	dropProb   float64
	delay      time.Duration
	timer      func(d time.Duration, fn func())
	n          uint64
	dropped    uint64
	delayed    uint64
}

// NewFaults returns an injector with deterministic randomness from seed and
// no faults configured. The default delay timer is time.AfterFunc; swap it
// with SetTimer (e.g. to a netsim Sim.At adapter) when delaying over the
// simulator, where real-time goroutines would race virtual time.
func NewFaults(seed int64) *Faults {
	return &Faults{
		rng:   rand.New(rand.NewSource(seed)),
		timer: func(d time.Duration, fn func()) { time.AfterFunc(d, fn) },
	}
}

// DropEveryN drops every nth send (deterministic); 0 disables.
func (f *Faults) DropEveryN(n uint64) *Faults {
	f.mu.Lock()
	f.dropEveryN = n
	f.mu.Unlock()
	return f
}

// DropProb drops each send with probability p.
func (f *Faults) DropProb(p float64) *Faults {
	f.mu.Lock()
	f.dropProb = p
	f.mu.Unlock()
	return f
}

// Delay defers each surviving send by d via the configured timer.
func (f *Faults) Delay(d time.Duration) *Faults {
	f.mu.Lock()
	f.delay = d
	f.mu.Unlock()
	return f
}

// SetTimer replaces the delay scheduler.
func (f *Faults) SetTimer(t func(d time.Duration, fn func())) *Faults {
	f.mu.Lock()
	f.timer = t
	f.mu.Unlock()
	return f
}

// Injected reports how many sends were dropped and delayed so far.
func (f *Faults) Injected() (dropped, delayed uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dropped, f.delayed
}

// Middleware returns the wrapping middleware.
func (f *Faults) Middleware() Middleware {
	return func(inner Endpoint) Endpoint {
		return &faultEndpoint{inner: inner, f: f}
	}
}

type faultEndpoint struct {
	inner Endpoint
	f     *Faults
}

func (e *faultEndpoint) ID() string           { return e.inner.ID() }
func (e *faultEndpoint) Unwrap() Endpoint     { return e.inner }
func (e *faultEndpoint) Close() error         { return e.inner.Close() }
func (e *faultEndpoint) SetHandler(h Handler) { e.inner.SetHandler(h) }

func (e *faultEndpoint) Send(to string, payload any, size int) error {
	f := e.f
	f.mu.Lock()
	f.n++
	if f.dropEveryN > 0 && f.n%f.dropEveryN == 0 {
		f.dropped++
		f.mu.Unlock()
		return nil // lost on the wire: not an error the sender sees
	}
	if f.dropProb > 0 && f.rng.Float64() < f.dropProb {
		f.dropped++
		f.mu.Unlock()
		return nil
	}
	if f.delay > 0 {
		f.delayed++
		timer := f.timer
		d := f.delay
		f.mu.Unlock()
		timer(d, func() { _ = e.inner.Send(to, payload, size) })
		return nil
	}
	f.mu.Unlock()
	return e.inner.Send(to, payload, size)
}

// --- handler stalls -----------------------------------------------------

// Stall defers delivery to the installed handler by a configurable hold
// time — a slow or wedged application handler, as opposed to Faults which
// models the network. Deliveries keep their arrival order (each is held for
// the same duration through a monotonic scheduler). Configure the timer to
// a netsim Sim.At adapter over the simulator, where real-time goroutines
// would race virtual time.
type Stall struct {
	mu      sync.Mutex
	hold    time.Duration
	timer   func(d time.Duration, fn func())
	stalled uint64
}

// NewStall returns a stall injector with no hold configured and the
// real-time timer; swap the timer with SetTimer over a simulator.
func NewStall() *Stall {
	return &Stall{timer: func(d time.Duration, fn func()) { time.AfterFunc(d, fn) }}
}

// Hold sets how long each delivery is held before the handler runs; 0
// disables stalling.
func (s *Stall) Hold(d time.Duration) *Stall {
	s.mu.Lock()
	s.hold = d
	s.mu.Unlock()
	return s
}

// SetTimer replaces the hold scheduler.
func (s *Stall) SetTimer(t func(d time.Duration, fn func())) *Stall {
	s.mu.Lock()
	s.timer = t
	s.mu.Unlock()
	return s
}

// Stalled reports how many deliveries were held so far.
func (s *Stall) Stalled() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stalled
}

// Middleware returns the wrapping middleware.
func (s *Stall) Middleware() Middleware {
	return func(inner Endpoint) Endpoint {
		return &stallEndpoint{inner: inner, s: s}
	}
}

type stallEndpoint struct {
	inner Endpoint
	s     *Stall
}

func (e *stallEndpoint) ID() string       { return e.inner.ID() }
func (e *stallEndpoint) Unwrap() Endpoint { return e.inner }
func (e *stallEndpoint) Close() error     { return e.inner.Close() }

func (e *stallEndpoint) Send(to string, payload any, size int) error {
	return e.inner.Send(to, payload, size)
}

func (e *stallEndpoint) SetHandler(h Handler) {
	if h == nil {
		e.inner.SetHandler(nil)
		return
	}
	e.inner.SetHandler(func(from string, payload any, size int) {
		s := e.s
		s.mu.Lock()
		hold := s.hold
		timer := s.timer
		if hold > 0 {
			s.stalled++
		}
		s.mu.Unlock()
		if hold <= 0 {
			h(from, payload, size)
			return
		}
		timer(hold, func() { h(from, payload, size) })
	})
}

// --- tracing ------------------------------------------------------------

// Tap interposes observation hooks on both directions without altering
// traffic. onSend fires before the inner Send, onRecv before the inner
// handler; either may be nil.
func Tap(onSend, onRecv func(peer string, payload any, size int)) Middleware {
	return func(inner Endpoint) Endpoint {
		return &tapEndpoint{inner: inner, onSend: onSend, onRecv: onRecv}
	}
}

// Logging is a Tap that formats every message through logf, e.g.
// Logging(log.Printf) or a test logger.
func Logging(logf func(format string, args ...any)) Middleware {
	return Tap(
		func(peer string, payload any, size int) {
			logf("fabric: send to=%s size=%d payload=%T", peer, size, payload)
		},
		func(peer string, payload any, size int) {
			logf("fabric: recv from=%s size=%d payload=%T", peer, size, payload)
		},
	)
}

type tapEndpoint struct {
	inner          Endpoint
	onSend, onRecv func(peer string, payload any, size int)
}

func (e *tapEndpoint) ID() string       { return e.inner.ID() }
func (e *tapEndpoint) Unwrap() Endpoint { return e.inner }
func (e *tapEndpoint) Close() error     { return e.inner.Close() }

func (e *tapEndpoint) Send(to string, payload any, size int) error {
	if e.onSend != nil {
		e.onSend(to, payload, size)
	}
	return e.inner.Send(to, payload, size)
}

func (e *tapEndpoint) SetHandler(h Handler) {
	if h == nil {
		e.inner.SetHandler(nil)
		return
	}
	e.inner.SetHandler(func(from string, payload any, size int) {
		if e.onRecv != nil {
			e.onRecv(from, payload, size)
		}
		h(from, payload, size)
	})
}
