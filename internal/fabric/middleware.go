package fabric

import (
	"math/rand"
	"sync"
	"time"
)

// --- metrics ------------------------------------------------------------

// Metrics collects per-hop counters and latencies for one wrapped endpoint.
// Create with NewMetrics, install with m.Middleware() inside Wrap, read
// with Snapshot.
type Metrics struct {
	mu         sync.Mutex
	base       Endpoint
	sent       uint64
	recv       uint64
	sendErrs   uint64
	sentBytes  uint64
	recvBytes  uint64
	sendLat    time.Duration
	handlerLat time.Duration
}

// MetricsSnapshot is a point-in-time copy of the collected counters.
type MetricsSnapshot struct {
	Sent, Recv, SendErrs uint64
	SentBytes, RecvBytes uint64
	// Dropped is probed from the wrapped chain's substrate adapter:
	// deliveries lost to no-handler overflow or decode failure.
	Dropped uint64
	// AvgSendLatency is wall time spent inside the inner Send (for the
	// simulator this is scheduling cost, not network latency).
	AvgSendLatency time.Duration
	// AvgHandlerLatency is wall time the application handler held a
	// delivery.
	AvgHandlerLatency time.Duration
}

// NewMetrics returns an empty collector.
func NewMetrics() *Metrics { return &Metrics{} }

// Middleware returns the wrapping middleware. A Metrics instance is meant
// to observe a single endpoint; wrapping several aggregates their counts
// but the drop probe follows only the last one wrapped.
func (m *Metrics) Middleware() Middleware {
	return func(inner Endpoint) Endpoint {
		m.mu.Lock()
		m.base = inner
		m.mu.Unlock()
		return &metricsEndpoint{inner: inner, m: m}
	}
}

// Snapshot returns a copy of the counters, including the substrate's
// dropped count.
func (m *Metrics) Snapshot() MetricsSnapshot {
	m.mu.Lock()
	s := MetricsSnapshot{
		Sent: m.sent, Recv: m.recv, SendErrs: m.sendErrs,
		SentBytes: m.sentBytes, RecvBytes: m.recvBytes,
	}
	if m.sent > 0 {
		s.AvgSendLatency = m.sendLat / time.Duration(m.sent)
	}
	if m.recv > 0 {
		s.AvgHandlerLatency = m.handlerLat / time.Duration(m.recv)
	}
	base := m.base
	m.mu.Unlock()
	if base != nil {
		s.Dropped = DroppedOf(base)
	}
	return s
}

type metricsEndpoint struct {
	inner Endpoint
	m     *Metrics
}

func (e *metricsEndpoint) ID() string       { return e.inner.ID() }
func (e *metricsEndpoint) Unwrap() Endpoint { return e.inner }
func (e *metricsEndpoint) Close() error     { return e.inner.Close() }

func (e *metricsEndpoint) Send(to string, payload any, size int) error {
	start := time.Now()
	err := e.inner.Send(to, payload, size)
	lat := time.Since(start)
	e.m.mu.Lock()
	if err != nil {
		e.m.sendErrs++
	} else {
		e.m.sent++
		e.m.sentBytes += uint64(size)
		e.m.sendLat += lat
	}
	e.m.mu.Unlock()
	return err
}

func (e *metricsEndpoint) SetHandler(h Handler) {
	if h == nil {
		e.inner.SetHandler(nil)
		return
	}
	e.inner.SetHandler(func(from string, payload any, size int) {
		start := time.Now()
		h(from, payload, size)
		lat := time.Since(start)
		e.m.mu.Lock()
		e.m.recv++
		e.m.recvBytes += uint64(size)
		e.m.handlerLat += lat
		e.m.mu.Unlock()
	})
}

// --- fault injection ----------------------------------------------------

// Faults injects drops and delays on the send path, for exercising loss
// recovery and latency tolerance over substrates that are otherwise
// reliable. Configure with the chainable setters before traffic flows.
type Faults struct {
	mu         sync.Mutex
	rng        *rand.Rand
	dropEveryN uint64
	dropProb   float64
	delay      time.Duration
	timer      func(d time.Duration, fn func())
	n          uint64
	dropped    uint64
	delayed    uint64
}

// NewFaults returns an injector with deterministic randomness from seed and
// no faults configured. The default delay timer is time.AfterFunc; swap it
// with SetTimer (e.g. to a netsim Sim.At adapter) when delaying over the
// simulator, where real-time goroutines would race virtual time.
func NewFaults(seed int64) *Faults {
	return &Faults{
		rng:   rand.New(rand.NewSource(seed)),
		timer: func(d time.Duration, fn func()) { time.AfterFunc(d, fn) },
	}
}

// DropEveryN drops every nth send (deterministic); 0 disables.
func (f *Faults) DropEveryN(n uint64) *Faults {
	f.mu.Lock()
	f.dropEveryN = n
	f.mu.Unlock()
	return f
}

// DropProb drops each send with probability p.
func (f *Faults) DropProb(p float64) *Faults {
	f.mu.Lock()
	f.dropProb = p
	f.mu.Unlock()
	return f
}

// Delay defers each surviving send by d via the configured timer.
func (f *Faults) Delay(d time.Duration) *Faults {
	f.mu.Lock()
	f.delay = d
	f.mu.Unlock()
	return f
}

// SetTimer replaces the delay scheduler.
func (f *Faults) SetTimer(t func(d time.Duration, fn func())) *Faults {
	f.mu.Lock()
	f.timer = t
	f.mu.Unlock()
	return f
}

// Injected reports how many sends were dropped and delayed so far.
func (f *Faults) Injected() (dropped, delayed uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dropped, f.delayed
}

// Middleware returns the wrapping middleware.
func (f *Faults) Middleware() Middleware {
	return func(inner Endpoint) Endpoint {
		return &faultEndpoint{inner: inner, f: f}
	}
}

type faultEndpoint struct {
	inner Endpoint
	f     *Faults
}

func (e *faultEndpoint) ID() string           { return e.inner.ID() }
func (e *faultEndpoint) Unwrap() Endpoint     { return e.inner }
func (e *faultEndpoint) Close() error         { return e.inner.Close() }
func (e *faultEndpoint) SetHandler(h Handler) { e.inner.SetHandler(h) }

func (e *faultEndpoint) Send(to string, payload any, size int) error {
	f := e.f
	f.mu.Lock()
	f.n++
	if f.dropEveryN > 0 && f.n%f.dropEveryN == 0 {
		f.dropped++
		f.mu.Unlock()
		return nil // lost on the wire: not an error the sender sees
	}
	if f.dropProb > 0 && f.rng.Float64() < f.dropProb {
		f.dropped++
		f.mu.Unlock()
		return nil
	}
	if f.delay > 0 {
		f.delayed++
		timer := f.timer
		d := f.delay
		f.mu.Unlock()
		timer(d, func() { _ = e.inner.Send(to, payload, size) })
		return nil
	}
	f.mu.Unlock()
	return e.inner.Send(to, payload, size)
}

// --- tracing ------------------------------------------------------------

// Tap interposes observation hooks on both directions without altering
// traffic. onSend fires before the inner Send, onRecv before the inner
// handler; either may be nil.
func Tap(onSend, onRecv func(peer string, payload any, size int)) Middleware {
	return func(inner Endpoint) Endpoint {
		return &tapEndpoint{inner: inner, onSend: onSend, onRecv: onRecv}
	}
}

// Logging is a Tap that formats every message through logf, e.g.
// Logging(log.Printf) or a test logger.
func Logging(logf func(format string, args ...any)) Middleware {
	return Tap(
		func(peer string, payload any, size int) {
			logf("fabric: send to=%s size=%d payload=%T", peer, size, payload)
		},
		func(peer string, payload any, size int) {
			logf("fabric: recv from=%s size=%d payload=%T", peer, size, payload)
		},
	)
}

type tapEndpoint struct {
	inner          Endpoint
	onSend, onRecv func(peer string, payload any, size int)
}

func (e *tapEndpoint) ID() string       { return e.inner.ID() }
func (e *tapEndpoint) Unwrap() Endpoint { return e.inner }
func (e *tapEndpoint) Close() error     { return e.inner.Close() }

func (e *tapEndpoint) Send(to string, payload any, size int) error {
	if e.onSend != nil {
		e.onSend(to, payload, size)
	}
	return e.inner.Send(to, payload, size)
}

func (e *tapEndpoint) SetHandler(h Handler) {
	if h == nil {
		e.inner.SetHandler(nil)
		return
	}
	e.inner.SetHandler(func(from string, payload any, size int) {
		if e.onRecv != nil {
			e.onRecv(from, payload, size)
		}
		h(from, payload, size)
	})
}
