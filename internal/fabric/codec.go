package fabric

import (
	"encoding/json"
	"fmt"
	"reflect"
	"sync"
)

// Envelope is the typed wire format used over byte-oriented substrates: a
// type tag plus a JSON body. It is the one envelope in the repo; transport
// and session previously carried their own copies.
type Envelope struct {
	Type string          `json:"type"`
	Body json.RawMessage `json:"body"`
}

// Marshal builds an envelope of the given type around body.
func Marshal(msgType string, body any) ([]byte, error) {
	raw, err := json.Marshal(body)
	if err != nil {
		return nil, fmt.Errorf("marshal %s body: %w", msgType, err)
	}
	env := Envelope{Type: msgType, Body: raw}
	data, err := json.Marshal(env)
	if err != nil {
		return nil, fmt.Errorf("marshal %s envelope: %w", msgType, err)
	}
	return data, nil
}

// Unmarshal parses an envelope from wire data.
func Unmarshal(data []byte) (Envelope, error) {
	var env Envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return Envelope{}, fmt.Errorf("unmarshal envelope: %w", err)
	}
	return env, nil
}

// Decode parses an envelope body into out.
func Decode(env Envelope, out any) error {
	if err := json.Unmarshal(env.Body, out); err != nil {
		return fmt.Errorf("decode %s body: %w", env.Type, err)
	}
	return nil
}

// PayloadCodec turns typed payloads into wire frames and back. Two
// implementations exist — *Codec (JSON envelopes) and *BinaryCodec
// (length-prefixed binary frames, see bincodec.go) — and the codec is
// selected per endpoint when a transport is adapted (FromTransport).
// Decode returns (nil, nil) for frames tagged for other protocols.
type PayloadCodec interface {
	Encode(payload any) ([]byte, error)
	Decode(data []byte) (any, error)
}

// Codec maps payload types to envelope tags and back, so callers send and
// receive typed values while byte-oriented substrates carry envelopes.
// Register every wire type once at setup; Encode and Decode are safe for
// concurrent use afterwards.
type Codec struct {
	mu    sync.RWMutex
	byTag map[string]reflect.Type
	byTyp map[reflect.Type]string
}

// NewCodec returns an empty codec.
func NewCodec() *Codec {
	return &Codec{
		byTag: make(map[string]reflect.Type),
		byTyp: make(map[reflect.Type]string),
	}
}

// Register associates tag with prototype's (pointer-stripped) type. Both a
// value and a pointer of the type encode under the tag; Decode always
// returns a pointer to a freshly allocated value.
func (c *Codec) Register(tag string, prototype any) {
	t := reflect.TypeOf(prototype)
	for t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	c.mu.Lock()
	c.byTag[tag] = t
	c.byTyp[t] = tag
	c.mu.Unlock()
}

// Encode envelopes payload under its registered tag. Unregistered payload
// types are an error: wire substrates can only carry known shapes.
func (c *Codec) Encode(payload any) ([]byte, error) {
	t := reflect.TypeOf(payload)
	for t != nil && t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	c.mu.RLock()
	tag, ok := c.byTyp[t]
	c.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("fabric: no tag registered for payload type %T", payload)
	}
	return Marshal(tag, payload)
}

// Decode parses wire data into a pointer to the registered type for
// its tag. Unknown tags return (nil, nil) so callers can skip traffic meant
// for other protocols sharing the endpoint; malformed data is an error.
func (c *Codec) Decode(data []byte) (any, error) {
	env, err := Unmarshal(data)
	if err != nil {
		return nil, err
	}
	c.mu.RLock()
	t, ok := c.byTag[env.Type]
	c.mu.RUnlock()
	if !ok {
		return nil, nil
	}
	out := reflect.New(t).Interface()
	if err := Decode(env, out); err != nil {
		return nil, err
	}
	return out, nil
}

// Hello announces an endpoint's dialable address, used by TCP deployments
// to populate the address book before application traffic flows.
type Hello struct {
	Addr string `json:"addr"`
}

// RegisterBase registers fabric's own housekeeping messages (currently just
// Hello) with a codec.
func RegisterBase(c *Codec) {
	c.Register("fabric/hello", Hello{})
}
