package fabric

import (
	"repro/internal/transport"
)

// TransportEndpoint adapts a byte-oriented transport endpoint (in-memory
// hub or TCP) to the fabric Endpoint interface, using a Codec to envelope
// typed payloads onto the wire and back.
type TransportEndpoint struct {
	ep    transport.Endpoint
	codec PayloadCodec
	in    inbox
}

// FromTransport wraps a transport endpoint with the given codec (JSON
// *Codec or *BinaryCodec — the wire format is selected per endpoint here).
// The raw byte handler is claimed immediately: frames arriving before
// SetHandler are decoded and buffered rather than dropped by the
// transport's drain loop. Frames that fail to decode, or whose tag is not
// registered with the codec, are counted as dropped.
func FromTransport(ep transport.Endpoint, codec PayloadCodec) *TransportEndpoint {
	t := &TransportEndpoint{ep: ep, codec: codec}
	ep.SetHandler(func(from string, data []byte) {
		payload, err := codec.Decode(data)
		if err != nil || payload == nil {
			t.in.countDrop()
			return
		}
		t.in.deliver(from, payload, len(data))
	})
	return t
}

// ID returns the underlying transport endpoint id.
func (t *TransportEndpoint) ID() string { return t.ep.ID() }

// Send envelopes payload via the codec and transmits it. The declared size
// is advisory on byte transports — the encoded frame length is what travels.
func (t *TransportEndpoint) Send(to string, payload any, size int) error {
	data, err := t.codec.Encode(payload)
	if err != nil {
		return err
	}
	return t.ep.Send(to, data)
}

// SetHandler installs the delivery callback, flushing buffered deliveries.
func (t *TransportEndpoint) SetHandler(h Handler) { t.in.set(h) }

// Close closes the underlying transport endpoint.
func (t *TransportEndpoint) Close() error {
	err := t.ep.Close()
	t.in.set(nil)
	return err
}

// Dropped counts frames lost to inbox overflow, decode failures, and
// unregistered tags.
func (t *TransportEndpoint) Dropped() uint64 { return t.in.droppedCount() }
