package fabric

import "time"

// Clock supplies the current time as a monotonic offset from an arbitrary
// epoch. Everything in the stack that needs "now" — metrics latency
// accounting, session item stamping, failure detection — takes one of
// these instead of reading the wall clock, so the same code runs in
// virtual time under netsim (Sim.Now) and in real time behind a daemon.
// That injection is what lets chaos traces stay byte-identical per seed:
// cscwlint's det-time rule rejects direct time.Now reads in trace-critical
// packages.
type Clock func() time.Duration

// WallClock returns a real-time Clock measuring elapsed time since the
// call. This is the declared real-time boundary for live deployments
// (cmd/sessiond and friends); it is the one place the stack may read the
// wall clock, which is why the suppressions below are acceptable — see
// DESIGN.md, "Enforced invariants".
func WallClock() Clock {
	//lint:ignore det-time WallClock is the single real-time boundary; all other code injects a Clock
	start := time.Now()
	return func() time.Duration {
		//lint:ignore det-time see WallClock: the one sanctioned wall-clock read
		return time.Since(start)
	}
}
