package fabric

import (
	"sync"

	"repro/internal/netsim"
)

// SimEndpoint adapts a netsim node to the fabric Endpoint interface.
// Payloads are in-process values and cross the simulated network untouched;
// size feeds the simulator's bandwidth model.
type SimEndpoint struct {
	node *netsim.Node
	in   inbox

	mu     sync.Mutex
	closed bool
}

// FromSim wraps a simulator node. The node's raw handler is claimed
// immediately, so deliveries arriving before SetHandler are buffered (up to
// the inbox cap) instead of vanishing in the simulator.
func FromSim(node *netsim.Node) *SimEndpoint {
	ep := &SimEndpoint{node: node}
	node.SetHandler(func(m netsim.Msg) { ep.in.deliver(m.From, m.Payload, m.Size) })
	return ep
}

// ID returns the underlying node id.
func (e *SimEndpoint) ID() string { return e.node.ID() }

// Send schedules delivery through the simulator.
func (e *SimEndpoint) Send(to string, payload any, size int) error {
	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	if closed {
		return ErrClosed
	}
	return e.node.Send(to, payload, size)
}

// SetHandler installs the delivery callback, flushing buffered deliveries.
func (e *SimEndpoint) SetHandler(h Handler) { e.in.set(h) }

// Close detaches from the node; later Sends return ErrClosed.
func (e *SimEndpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.mu.Unlock()
	e.node.SetHandler(nil)
	e.in.set(nil)
	return nil
}

// Dropped counts deliveries lost to inbox overflow while no handler was
// installed.
func (e *SimEndpoint) Dropped() uint64 { return e.in.droppedCount() }
