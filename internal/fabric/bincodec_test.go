package fabric_test

// Binary codec conformance: round-trip parity against the JSON codec for
// every payload type registered anywhere in the repo (fabric, session,
// mobile — the group packet, being unexported, has its parity test in
// package group), plus the frame-level error paths: truncation at every
// byte boundary, oversized length prefixes, trailing bytes, version
// mismatches, unknown tags, and the JSON interop fallback.

import (
	"encoding/binary"
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/mobile"
	"repro/internal/session"
)

// fullRegistry returns a codec with every wire type in the repo registered
// (except group's unexported packet), plus the binary codec sharing it.
func fullRegistry() (*fabric.Codec, *fabric.BinaryCodec) {
	reg := fabric.NewCodec()
	fabric.RegisterBase(reg)
	session.RegisterWire(reg)
	mobile.RegisterWire(reg)
	return reg, fabric.NewBinaryCodec(reg)
}

// registeredPayloads is one representative non-trivial instance per
// registered wire type. Zero values ride along implicitly: the fuzz and
// truncation tests below slice these frames every which way.
func registeredPayloads() map[string]any {
	items := []session.Item{
		{Seq: 1, From: "alice", Kind: "edit", Body: "insert x", At: 5 * time.Millisecond},
		{Seq: 2, From: "bob", Kind: "chat", Body: "howdy ☺", At: 7 * time.Millisecond},
	}
	return map[string]any{
		"fabric/hello":     fabric.Hello{Addr: "127.0.0.1:9999"},
		"session/join":     session.MsgJoin{From: "carol", Since: 41, State: session.Away},
		"session/join-ack": session.MsgJoinAck{Mode: session.Asynchronous, Backlog: items, Members: []string{"alice", "bob"}},
		"session/post":     session.MsgPost{From: "alice", Kind: "edit", Body: "delete y"},
		"session/items":    session.MsgItems{Items: items},
		"session/poll":     session.MsgPoll{From: "bob", Since: 2},
		"session/mode":     session.MsgMode{Mode: session.Synchronous},
		"session/presence": session.MsgPresence{From: "carol", State: session.Offline},
		"session/leave":    session.MsgLeave{From: "bob"},
		"mobile/traffic":   mobile.Traffic{Op: "fetch", Key: "doc/7", Bytes: 1024},
	}
}

// TestBinaryRoundTripParity: for every registered payload type, the binary
// codec round-trips to the same decoded value the JSON codec produces.
func TestBinaryRoundTripParity(t *testing.T) {
	reg, bin := fullRegistry()
	for tag, payload := range registeredPayloads() {
		bframe, err := bin.Encode(payload)
		if err != nil {
			t.Fatalf("%s: binary encode: %v", tag, err)
		}
		jframe, err := reg.Encode(payload)
		if err != nil {
			t.Fatalf("%s: json encode: %v", tag, err)
		}
		bdec, err := bin.Decode(bframe)
		if err != nil {
			t.Fatalf("%s: binary decode: %v", tag, err)
		}
		jdec, err := reg.Decode(jframe)
		if err != nil {
			t.Fatalf("%s: json decode: %v", tag, err)
		}
		if bdec == nil {
			t.Fatalf("%s: binary decode returned nil for a registered tag", tag)
		}
		if !reflect.DeepEqual(bdec, jdec) {
			t.Errorf("%s: binary round-trip %#v disagrees with json round-trip %#v", tag, bdec, jdec)
		}
	}
}

// TestBinaryJSONInterop: a binary-selected endpoint must still understand
// plain JSON envelopes from unmigrated peers.
func TestBinaryJSONInterop(t *testing.T) {
	reg, bin := fullRegistry()
	for tag, payload := range registeredPayloads() {
		jframe, err := reg.Encode(payload)
		if err != nil {
			t.Fatalf("%s: json encode: %v", tag, err)
		}
		got, err := bin.Decode(jframe)
		if err != nil {
			t.Fatalf("%s: binary codec rejected json frame: %v", tag, err)
		}
		want, _ := reg.Decode(jframe)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: json frame via binary codec = %#v, want %#v", tag, got, want)
		}
	}
}

// TestBinaryUnknownTag: frames for unregistered tags are skipped (nil, nil),
// matching the JSON codec's contract for foreign traffic.
func TestBinaryUnknownTag(t *testing.T) {
	full, fullBin := fullRegistry()
	frame, err := fullBin.Encode(mobile.Traffic{Op: "read", Key: "k"})
	if err != nil {
		t.Fatal(err)
	}
	bare := fabric.NewCodec()
	fabric.RegisterBase(bare)
	got, err := fabric.NewBinaryCodec(bare).Decode(frame)
	if err != nil || got != nil {
		t.Fatalf("unknown tag: got (%v, %v), want (nil, nil)", got, err)
	}
	_ = full
}

// TestBinaryTruncatedFrames: every proper prefix of a valid frame must fail
// with ErrTruncatedFrame — no panics, no silent partial decodes.
func TestBinaryTruncatedFrames(t *testing.T) {
	_, bin := fullRegistry()
	for tag, payload := range registeredPayloads() {
		frame, err := bin.Encode(payload)
		if err != nil {
			t.Fatal(err)
		}
		for n := 0; n < len(frame); n++ {
			_, err := bin.Decode(frame[:n])
			if !errors.Is(err, fabric.ErrTruncatedFrame) {
				t.Fatalf("%s: prefix %d/%d bytes: got %v, want ErrTruncatedFrame", tag, n, len(frame), err)
			}
		}
	}
}

// TestBinaryOversizedLength: a declared body length past MaxBinaryFrame is
// rejected before any allocation, regardless of actual frame size.
func TestBinaryOversizedLength(t *testing.T) {
	_, bin := fullRegistry()
	frame, err := bin.Encode(fabric.Hello{Addr: "x"})
	if err != nil {
		t.Fatal(err)
	}
	// The length prefix sits right after the 4-byte header and the tag.
	tagLen := int(frame[3])
	binary.BigEndian.PutUint32(frame[4+tagLen:], fabric.MaxBinaryFrame+1)
	if _, err := bin.Decode(frame); !errors.Is(err, fabric.ErrOversizedFrame) {
		t.Fatalf("got %v, want ErrOversizedFrame", err)
	}
}

// TestBinaryTrailingBytes: extra bytes past the declared body are an error —
// the frame is the whole datagram, so surplus means corruption.
func TestBinaryTrailingBytes(t *testing.T) {
	_, bin := fullRegistry()
	frame, err := bin.Encode(session.MsgLeave{From: "zed"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bin.Decode(append(frame, 0xEE)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

// TestBinaryBadVersion pins the version gate.
func TestBinaryBadVersion(t *testing.T) {
	_, bin := fullRegistry()
	frame, err := bin.Encode(fabric.Hello{Addr: "x"})
	if err != nil {
		t.Fatal(err)
	}
	frame[1] = 99
	if _, err := bin.Decode(frame); err == nil {
		t.Fatal("unknown version accepted")
	}
}

// TestHelloBinaryBody: Hello opts into the hand-rolled binary body; its
// frame must not contain a JSON body, and trailing bytes inside the body
// must be rejected by the parser.
func TestHelloBinaryBody(t *testing.T) {
	_, bin := fullRegistry()
	frame, err := bin.Encode(fabric.Hello{Addr: "10.0.0.1:80"})
	if err != nil {
		t.Fatal(err)
	}
	if frame[2] != 1 {
		t.Fatalf("hello frame encoding byte = %d, want 1 (binary body)", frame[2])
	}
	var h fabric.Hello
	if err := h.ParseBinary([]byte{1, 'a', 'Z'}); err == nil {
		t.Fatal("hello body with trailing bytes accepted")
	}
}

// FuzzBinaryDecode: arbitrary bytes must never panic the decoder, and
// anything it does accept must re-encode and decode to the same value.
func FuzzBinaryDecode(f *testing.F) {
	_, bin := fullRegistry()
	for _, payload := range registeredPayloads() {
		frame, err := bin.Encode(payload)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
	}
	f.Add([]byte{0xC5})
	f.Add([]byte{0xC5, 1, 0, 255})
	f.Add([]byte(`{"type":"fabric/hello","body":{"addr":"x"}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := bin.Decode(data)
		if err != nil || got == nil {
			return
		}
		frame, err := bin.Encode(got)
		if err != nil {
			t.Fatalf("re-encode of accepted value %#v: %v", got, err)
		}
		again, err := bin.Decode(frame)
		if err != nil || !reflect.DeepEqual(got, again) {
			t.Fatalf("re-decode mismatch: %#v vs %#v (err %v)", got, again, err)
		}
	})
}

// FuzzConsumeString: the length-prefixed string helpers must be total over
// arbitrary input and exact over their own output.
func FuzzConsumeString(f *testing.F) {
	f.Add("", []byte{})
	f.Add("hello", []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, s string, junk []byte) {
		frame := fabric.AppendString(nil, s)
		got, rest, err := fabric.ConsumeString(frame)
		if err != nil || got != s || len(rest) != 0 {
			t.Fatalf("round-trip %q: got %q rest=%d err=%v", s, got, len(rest), err)
		}
		// Arbitrary bytes: must not panic, errors are fine.
		_, _, _ = fabric.ConsumeString(junk)
	})
}
