package fabric

import (
	"testing"
	"time"

	"repro/internal/netsim"
)

// TestMetricsInjectedClockExactLatencies pins the latency arithmetic: with
// a scripted clock the averages are exact, not approximate — which is the
// whole point of clock injection (the same code measures virtual time under
// netsim and wall time behind a daemon, and seeded runs stay deterministic).
func TestMetricsInjectedClockExactLatencies(t *testing.T) {
	sim := netsim.New(1, netsim.LocalLink)
	a := FromSim(sim.MustAddNode("a"))
	b := FromSim(sim.MustAddNode("b"))

	var now time.Duration
	m := NewMetrics().SetClock(func() time.Duration { return now })

	// Inside the metrics wrapper on the send side, each inner Send advances
	// the scripted clock 3ms; each handler execution advances it 2ms.
	advance := Tap(func(string, any, int) { now += 3 * time.Millisecond }, nil)
	wa := Wrap(a, m.Middleware(), advance)
	wb := Wrap(b, m.Middleware())
	wb.SetHandler(func(string, any, int) { now += 2 * time.Millisecond })

	for i := 0; i < 4; i++ {
		if err := wa.Send("b", i, 10); err != nil {
			t.Fatal(err)
		}
	}
	sim.Run()

	s := m.Snapshot()
	if s.Sent != 4 || s.Recv != 4 {
		t.Fatalf("sent/recv = %d/%d, want 4/4", s.Sent, s.Recv)
	}
	if s.AvgSendLatency != 3*time.Millisecond {
		t.Fatalf("AvgSendLatency = %v, want exactly 3ms", s.AvgSendLatency)
	}
	if s.AvgHandlerLatency != 2*time.Millisecond {
		t.Fatalf("AvgHandlerLatency = %v, want exactly 2ms", s.AvgHandlerLatency)
	}
}

// TestMetricsSendErrorNotTimed: failed sends count as errors and do not
// pollute the latency accumulators.
func TestMetricsSendErrorNotTimed(t *testing.T) {
	sim := netsim.New(1, netsim.LocalLink)
	a := FromSim(sim.MustAddNode("a"))

	var now time.Duration
	m := NewMetrics().SetClock(func() time.Duration { return now })
	wa := Wrap(a, m.Middleware())

	if err := wa.Send("nobody", 1, 1); err == nil {
		t.Fatal("send to unknown node should fail")
	}
	s := m.Snapshot()
	if s.SendErrs != 1 || s.Sent != 0 {
		t.Fatalf("snapshot = %+v, want 1 error and 0 sent", s)
	}
	if s.AvgSendLatency != 0 {
		t.Fatalf("AvgSendLatency = %v, want 0 (no successful sends)", s.AvgSendLatency)
	}
}

// TestStallVirtualTimer drives Stall's hold scheduler from the simulator:
// deliveries land exactly hold after their arrival, in arrival order, with
// no real time involved.
func TestStallVirtualTimer(t *testing.T) {
	sim := netsim.New(1, netsim.LocalLink)
	a := FromSim(sim.MustAddNode("a"))
	b := FromSim(sim.MustAddNode("b"))

	const hold = 40 * time.Millisecond
	st := NewStall().Hold(hold).SetTimer(sim.At)
	wb := Wrap(b, st.Middleware())

	type arrival struct {
		n  int
		at time.Duration
	}
	var got []arrival
	wb.SetHandler(func(_ string, payload any, _ int) {
		got = append(got, arrival{payload.(int), sim.Now()})
	})
	for i := 0; i < 3; i++ {
		if err := a.Send("b", i, 1); err != nil {
			t.Fatal(err)
		}
	}
	sim.Run()

	if st.Stalled() != 3 {
		t.Fatalf("stalled = %d, want 3", st.Stalled())
	}
	if len(got) != 3 {
		t.Fatalf("delivered %d, want 3", len(got))
	}
	for i, g := range got {
		if g.n != i {
			t.Fatalf("delivery %d carried payload %d: order not preserved (%v)", i, g.n, got)
		}
		if g.at < hold {
			t.Fatalf("delivery %d at %v, want >= hold %v", i, g.at, hold)
		}
	}
}

// TestWallClockMonotonic is the one test that touches the real clock: the
// declared real-time boundary must be nondecreasing from zero.
func TestWallClockMonotonic(t *testing.T) {
	c := WallClock()
	last := c()
	if last < 0 {
		t.Fatalf("first reading %v < 0", last)
	}
	for i := 0; i < 100; i++ {
		now := c()
		if now < last {
			t.Fatalf("clock went backwards: %v then %v", last, now)
		}
		last = now
	}
}
