// Package fabric is the single seam between the collaboration layers and
// the messaging substrates. Every substrate — the discrete-event simulator
// (netsim), the in-memory hub and the TCP transport (transport) — is adapted
// to one Endpoint interface with a uniform (from, payload, size) delivery
// shape, so group, session, stream, mobile and core code runs unchanged over
// any of them. Middlewares (metrics, fault injection, tracing) interpose on
// the message path by wrapping an Endpoint; Wrap composes them into a chain.
//
// The package owns the typed-envelope codec (previously duplicated between
// transport and session/wire.go): payload structs register under a string
// tag once and travel as JSON envelopes over byte-oriented substrates, while
// in-process substrates pass the typed values straight through.
package fabric

import (
	"errors"
	"sync"
)

// ErrClosed is returned by Send on a closed endpoint.
var ErrClosed = errors.New("fabric: endpoint closed")

// Handler receives one inbound message: the sender's id, the decoded typed
// payload, and the nominal size in bytes (for accounting; substrates that
// frame bytes report the frame length, in-process substrates report the
// sender-declared size).
type Handler func(from string, payload any, size int)

// Endpoint is the uniform messaging surface. Implementations must tolerate
// SetHandler being called before, after, or between deliveries; messages
// arriving while no handler is installed are buffered (bounded) rather than
// silently dropped, and overflow is counted — see Dropped probing below.
type Endpoint interface {
	// ID returns the endpoint's stable address on its substrate.
	ID() string
	// Send delivers payload to the named peer. size is the nominal wire
	// size in bytes for bandwidth/metrics accounting.
	Send(to string, payload any, size int) error
	// SetHandler installs (or, with nil, removes) the delivery callback.
	// Installing a handler flushes any buffered deliveries in arrival
	// order before new ones are dispatched.
	SetHandler(h Handler)
	// Close releases the endpoint; subsequent Sends return ErrClosed.
	Close() error
}

// Middleware wraps an Endpoint with interposed behaviour. The wrapper must
// delegate ID and Close and may transform Send and the installed Handler.
type Middleware func(Endpoint) Endpoint

// Wrap composes middlewares around ep. The first middleware is outermost:
// Wrap(ep, a, b) means a sees Sends first and deliveries last.
func Wrap(ep Endpoint, mws ...Middleware) Endpoint {
	for i := len(mws) - 1; i >= 0; i-- {
		if mws[i] == nil {
			continue
		}
		ep = mws[i](ep)
	}
	return ep
}

// Unwrapper is implemented by middleware wrappers so the chain can be
// walked down to the substrate adapter.
type Unwrapper interface{ Unwrap() Endpoint }

// DropCounter is implemented by adapters that count messages lost for want
// of a handler (buffer overflow) or because they could not be decoded.
type DropCounter interface{ Dropped() uint64 }

// DroppedOf walks a middleware chain down to the first endpoint exposing a
// drop count and returns it; zero if none does.
func DroppedOf(ep Endpoint) uint64 {
	for ep != nil {
		if d, ok := ep.(DropCounter); ok {
			return d.Dropped()
		}
		u, ok := ep.(Unwrapper)
		if !ok {
			return 0
		}
		ep = u.Unwrap()
	}
	return 0
}

// pendingCap bounds the no-handler buffer; beyond it arrivals are counted
// as dropped instead of held. Large enough for any setup-order race, small
// enough to not mask a forgotten handler forever.
const pendingCap = 1024

type delivery struct {
	from    string
	payload any
	size    int
}

// inbox is the shared buffer-or-count delivery stage used by the substrate
// adapters: it holds messages that arrive before a handler is installed and
// flushes them, in order, when one is.
type inbox struct {
	mu       sync.Mutex
	handler  Handler
	pending  []delivery
	flushing bool
	dropped  uint64
}

func (b *inbox) deliver(from string, payload any, size int) {
	b.mu.Lock()
	// While a flush is running, new arrivals join the queue so the flush
	// loop preserves arrival order.
	if b.handler == nil || b.flushing {
		if len(b.pending) >= pendingCap {
			b.dropped++
			b.mu.Unlock()
			return
		}
		b.pending = append(b.pending, delivery{from, payload, size})
		b.mu.Unlock()
		return
	}
	h := b.handler
	b.mu.Unlock()
	h(from, payload, size)
}

func (b *inbox) countDrop() {
	b.mu.Lock()
	b.dropped++
	b.mu.Unlock()
}

func (b *inbox) set(h Handler) {
	b.mu.Lock()
	b.handler = h
	if h == nil || b.flushing {
		b.mu.Unlock()
		return
	}
	b.flushing = true
	for len(b.pending) > 0 && b.handler != nil {
		batch := b.pending
		b.pending = nil
		cur := b.handler
		b.mu.Unlock()
		for _, d := range batch {
			cur(d.from, d.payload, d.size)
		}
		b.mu.Lock()
	}
	b.flushing = false
	b.mu.Unlock()
}

func (b *inbox) droppedCount() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dropped
}
