package fabric

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/transport"
)

type ping struct {
	N    int    `json:"n"`
	Note string `json:"note"`
}

// --- envelope (moved here from transport) -------------------------------

func TestEnvelopeRoundTrip(t *testing.T) {
	data, err := Marshal("ping", ping{N: 7, Note: "hello"})
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	env, err := Unmarshal(data)
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if env.Type != "ping" {
		t.Fatalf("type = %q, want ping", env.Type)
	}
	var out ping
	if err := Decode(env, &out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if out.N != 7 || out.Note != "hello" {
		t.Fatalf("round trip got %+v", out)
	}
}

func TestUnmarshalGarbage(t *testing.T) {
	if _, err := Unmarshal([]byte("{not json")); err == nil {
		t.Fatal("want error for garbage input")
	}
}

func TestDecodeBadBody(t *testing.T) {
	env := Envelope{Type: "ping", Body: []byte(`"not an object"`)}
	var out ping
	if err := Decode(env, &out); err == nil {
		t.Fatal("want error decoding string body into struct")
	}
}

// --- codec --------------------------------------------------------------

func TestCodecRoundTrip(t *testing.T) {
	c := NewCodec()
	c.Register("test/ping", ping{})
	data, err := c.Encode(&ping{N: 3, Note: "x"})
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := c.Decode(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	p, ok := got.(*ping)
	if !ok {
		t.Fatalf("decode returned %T, want *ping", got)
	}
	if p.N != 3 || p.Note != "x" {
		t.Fatalf("round trip got %+v", p)
	}
	// Value (non-pointer) payloads encode under the same tag.
	if _, err := c.Encode(ping{N: 1}); err != nil {
		t.Fatalf("value encode: %v", err)
	}
}

func TestCodecUnknownTagSkipped(t *testing.T) {
	c := NewCodec()
	c.Register("test/ping", ping{})
	data, err := Marshal("someone/elses", map[string]int{"a": 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Decode(data)
	if err != nil {
		t.Fatalf("unknown tag should not error: %v", err)
	}
	if got != nil {
		t.Fatalf("unknown tag should decode to nil, got %#v", got)
	}
}

func TestCodecUnregisteredEncodeFails(t *testing.T) {
	c := NewCodec()
	if _, err := c.Encode(struct{ X int }{1}); err == nil {
		t.Fatal("want error encoding unregistered type")
	}
}

func TestCodecGarbageDecodeFails(t *testing.T) {
	c := NewCodec()
	if _, err := c.Decode([]byte("}{")); err == nil {
		t.Fatal("want error decoding garbage")
	}
}

// --- sim adapter --------------------------------------------------------

func TestFromSimRoundTrip(t *testing.T) {
	sim := netsim.New(1, netsim.LocalLink)
	a := FromSim(sim.MustAddNode("a"))
	b := FromSim(sim.MustAddNode("b"))
	var got []string
	b.SetHandler(func(from string, payload any, size int) {
		got = append(got, fmt.Sprintf("%s:%v:%d", from, payload, size))
	})
	if err := a.Send("b", "hi", 10); err != nil {
		t.Fatalf("send: %v", err)
	}
	sim.Run()
	if len(got) != 1 || got[0] != "a:hi:10" {
		t.Fatalf("delivery = %v", got)
	}
}

func TestFromSimBuffersBeforeHandler(t *testing.T) {
	sim := netsim.New(1, netsim.LocalLink)
	a := FromSim(sim.MustAddNode("a"))
	b := FromSim(sim.MustAddNode("b"))
	for i := 0; i < 3; i++ {
		if err := a.Send("b", i, 1); err != nil {
			t.Fatal(err)
		}
	}
	sim.Run() // deliveries land with no handler installed: buffered
	var got []any
	b.SetHandler(func(from string, payload any, size int) { got = append(got, payload) })
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("buffered flush = %v, want [0 1 2]", got)
	}
	if d := b.Dropped(); d != 0 {
		t.Fatalf("dropped = %d, want 0", d)
	}
	if sim.DroppedNoHandler() != 0 {
		t.Fatalf("sim counted no-handler drops despite adapter: %d", sim.DroppedNoHandler())
	}
}

func TestFromSimOverflowCountsDropped(t *testing.T) {
	sim := netsim.New(1, netsim.LocalLink)
	a := FromSim(sim.MustAddNode("a"))
	b := FromSim(sim.MustAddNode("b"))
	for i := 0; i < pendingCap+5; i++ {
		if err := a.Send("b", i, 0); err != nil {
			t.Fatal(err)
		}
	}
	sim.Run()
	if d := b.Dropped(); d != 5 {
		t.Fatalf("dropped = %d, want 5", d)
	}
	// The buffer keeps the oldest pendingCap arrivals (overflow sheds the
	// newest), and installing the handler must flush them in arrival order.
	var got []int
	b.SetHandler(func(_ string, payload any, _ int) { got = append(got, payload.(int)) })
	if len(got) != pendingCap {
		t.Fatalf("flushed %d, want %d", len(got), pendingCap)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("flush order broken at index %d: got %d", i, v)
		}
	}
}

func TestFromSimClose(t *testing.T) {
	sim := netsim.New(1, netsim.LocalLink)
	a := FromSim(sim.MustAddNode("a"))
	sim.MustAddNode("b")
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("b", "x", 1); err != ErrClosed {
		t.Fatalf("send after close = %v, want ErrClosed", err)
	}
}

func TestNetsimCountsNoHandlerDrops(t *testing.T) {
	sim := netsim.New(1, netsim.LocalLink)
	a := sim.MustAddNode("a")
	sim.MustAddNode("b") // never given a handler, raw node
	if err := a.Send("b", "lost", 1); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	if n := sim.DroppedNoHandler(); n != 1 {
		t.Fatalf("DroppedNoHandler = %d, want 1", n)
	}
}

// --- transport adapter --------------------------------------------------

func newTestCodec() *Codec {
	c := NewCodec()
	c.Register("test/ping", ping{})
	return c
}

func TestFromTransportRoundTrip(t *testing.T) {
	hub := transport.NewHub()
	c := newTestCodec()
	a := FromTransport(hub.MustAttach("a"), c)
	b := FromTransport(hub.MustAttach("b"), c)
	defer a.Close()
	defer b.Close()

	got := make(chan ping, 1)
	b.SetHandler(func(from string, payload any, size int) {
		if p, ok := payload.(*ping); ok && from == "a" {
			got <- *p
		}
	})
	if err := a.Send("b", &ping{N: 9, Note: "over the wire"}, 0); err != nil {
		t.Fatalf("send: %v", err)
	}
	select {
	case p := <-got:
		if p.N != 9 || p.Note != "over the wire" {
			t.Fatalf("got %+v", p)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("timeout waiting for delivery")
	}
}

func TestFromTransportBuffersBeforeHandler(t *testing.T) {
	hub := transport.NewHub()
	c := newTestCodec()
	a := FromTransport(hub.MustAttach("a"), c)
	b := FromTransport(hub.MustAttach("b"), c)
	defer a.Close()
	defer b.Close()

	if err := a.Send("b", &ping{N: 1}, 0); err != nil {
		t.Fatal(err)
	}
	// Wait until the frame has crossed the hub into b's inbox buffer.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		b.in.mu.Lock()
		n := len(b.in.pending)
		b.in.mu.Unlock()
		if n == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	got := make(chan ping, 1)
	b.SetHandler(func(from string, payload any, size int) {
		if p, ok := payload.(*ping); ok {
			got <- *p
		}
	})
	select {
	case p := <-got:
		if p.N != 1 {
			t.Fatalf("got %+v", p)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("buffered frame never flushed")
	}
}

// TestFromTransportPayloadSnapshotAtSend: the codec encodes the payload when
// Send is called, so mutating the object afterwards must not change what the
// receiver decodes (the fabric-level analogue of the transport hub's
// buffer-copy guarantee).
func TestFromTransportPayloadSnapshotAtSend(t *testing.T) {
	hub := transport.NewHub()
	c := newTestCodec()
	a := FromTransport(hub.MustAttach("a"), c)
	b := FromTransport(hub.MustAttach("b"), c)
	defer a.Close()
	defer b.Close()

	got := make(chan ping, 1)
	b.SetHandler(func(from string, payload any, size int) {
		if p, ok := payload.(*ping); ok {
			got <- *p
		}
	})
	msg := &ping{N: 1, Note: "orig"}
	if err := a.Send("b", msg, 0); err != nil {
		t.Fatal(err)
	}
	msg.N = 99
	msg.Note = "mutated after send"
	select {
	case p := <-got:
		if p.N != 1 || p.Note != "orig" {
			t.Fatalf("receiver saw %+v; payload not snapshotted at send time", p)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("timeout waiting for delivery")
	}
}

func TestFromTransportRejectsUnregisteredPayload(t *testing.T) {
	hub := transport.NewHub()
	c := newTestCodec()
	a := FromTransport(hub.MustAttach("a"), c)
	defer a.Close()
	if err := a.Send("b", struct{ X int }{1}, 0); err == nil {
		t.Fatal("want encode error for unregistered payload type")
	}
}

func TestFromTransportCountsUndecodableFrames(t *testing.T) {
	hub := transport.NewHub()
	c := newTestCodec()
	raw := hub.MustAttach("raw")
	b := FromTransport(hub.MustAttach("b"), c)
	defer raw.Close()
	defer b.Close()
	b.SetHandler(func(string, any, int) {})

	if err := raw.Send("b", []byte("not an envelope")); err != nil {
		t.Fatal(err)
	}
	unknown, _ := Marshal("nobody/home", 1)
	if err := raw.Send("b", unknown); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if b.Dropped() == 2 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("dropped = %d, want 2", b.Dropped())
}

// --- middleware ---------------------------------------------------------

func TestWrapOrderOutermostFirst(t *testing.T) {
	sim := netsim.New(1, netsim.LocalLink)
	base := FromSim(sim.MustAddNode("a"))
	sim.MustAddNode("b")
	var order []string
	mark := func(name string) Middleware {
		return Tap(func(string, any, int) { order = append(order, name) }, nil)
	}
	ep := Wrap(base, mark("outer"), mark("inner"))
	if err := ep.Send("b", "x", 1); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "outer" || order[1] != "inner" {
		t.Fatalf("order = %v", order)
	}
	if ep.ID() != "a" {
		t.Fatalf("wrapped ID = %q", ep.ID())
	}
}

func TestMetricsMiddleware(t *testing.T) {
	sim := netsim.New(1, netsim.LocalLink)
	a := FromSim(sim.MustAddNode("a"))
	bNode := sim.MustAddNode("b")
	b := FromSim(bNode)
	m := NewMetrics()
	wb := Wrap(b, m.Middleware())
	wa := Wrap(a, NewMetrics().Middleware())

	var got int
	wb.SetHandler(func(string, any, int) { got++ })
	for i := 0; i < 4; i++ {
		if err := wa.Send("b", i, 25); err != nil {
			t.Fatal(err)
		}
	}
	sim.Run()
	s := m.Snapshot()
	if got != 4 || s.Recv != 4 || s.RecvBytes != 100 {
		t.Fatalf("recv snapshot = %+v (handler saw %d)", s, got)
	}
	if s.Dropped != 0 {
		t.Fatalf("dropped = %d", s.Dropped)
	}
}

func TestMetricsExposesDroppedThroughChain(t *testing.T) {
	sim := netsim.New(1, netsim.LocalLink)
	a := FromSim(sim.MustAddNode("a"))
	b := FromSim(sim.MustAddNode("b"))
	m := NewMetrics()
	// No handler ever installed on b; overflow the inbox.
	Wrap(b, Tap(nil, nil), m.Middleware())
	for i := 0; i < pendingCap+3; i++ {
		if err := a.Send("b", i, 0); err != nil {
			t.Fatal(err)
		}
	}
	sim.Run()
	if d := m.Snapshot().Dropped; d != 3 {
		t.Fatalf("snapshot dropped = %d, want 3", d)
	}
}

// TestMetricsAggregatesDropsAcrossEndpoints is the regression test for the
// old single-probe limitation: one Metrics instance shared across several
// wrapped endpoints used to report only the last endpoint's drops. The probe
// must sum every wrapped substrate.
func TestMetricsAggregatesDropsAcrossEndpoints(t *testing.T) {
	sim := netsim.New(1, netsim.LocalLink)
	src := FromSim(sim.MustAddNode("src"))
	b := FromSim(sim.MustAddNode("b"))
	c := FromSim(sim.MustAddNode("c"))
	m := NewMetrics()
	// Neither b nor c ever installs a handler; overflow both inboxes by
	// different amounts so the aggregate is distinguishable from either.
	Wrap(b, m.Middleware())
	Wrap(c, m.Middleware())
	for i := 0; i < pendingCap+2; i++ {
		if err := src.Send("b", i, 0); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < pendingCap+7; i++ {
		if err := src.Send("c", i, 0); err != nil {
			t.Fatal(err)
		}
	}
	sim.Run()
	if d := m.Snapshot().Dropped; d != 9 {
		t.Fatalf("snapshot dropped = %d, want 9 (2 on b + 7 on c)", d)
	}
}

func TestFaultsDropEveryN(t *testing.T) {
	sim := netsim.New(1, netsim.LocalLink)
	a := FromSim(sim.MustAddNode("a"))
	b := FromSim(sim.MustAddNode("b"))
	f := NewFaults(42).DropEveryN(3)
	wa := Wrap(a, f.Middleware())
	var got int
	b.SetHandler(func(string, any, int) { got++ })
	for i := 0; i < 9; i++ {
		if err := wa.Send("b", i, 1); err != nil {
			t.Fatal(err)
		}
	}
	sim.Run()
	if got != 6 {
		t.Fatalf("delivered %d, want 6", got)
	}
	if d, _ := f.Injected(); d != 3 {
		t.Fatalf("injected drops = %d, want 3", d)
	}
}

func TestFaultsDelayOverSim(t *testing.T) {
	sim := netsim.New(1, netsim.LocalLink)
	a := FromSim(sim.MustAddNode("a"))
	b := FromSim(sim.MustAddNode("b"))
	f := NewFaults(1).Delay(50 * time.Millisecond).
		SetTimer(func(d time.Duration, fn func()) { sim.At(d, fn) })
	wa := Wrap(a, f.Middleware())
	var at time.Duration
	b.SetHandler(func(string, any, int) { at = sim.Now() })
	if err := wa.Send("b", "late", 1); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	if at < 50*time.Millisecond {
		t.Fatalf("delivered at %v, want >= 50ms", at)
	}
	if _, delayed := f.Injected(); delayed != 1 {
		t.Fatalf("delayed = %d, want 1", delayed)
	}
}

func TestLoggingMiddleware(t *testing.T) {
	sim := netsim.New(1, netsim.LocalLink)
	a := FromSim(sim.MustAddNode("a"))
	b := FromSim(sim.MustAddNode("b"))
	var mu sync.Mutex
	var lines []string
	logf := func(format string, args ...any) {
		mu.Lock()
		lines = append(lines, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	wa := Wrap(a, Logging(logf))
	wb := Wrap(b, Logging(logf))
	wb.SetHandler(func(string, any, int) {})
	if err := wa.Send("b", "x", 3); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	mu.Lock()
	defer mu.Unlock()
	if len(lines) != 2 ||
		!strings.Contains(lines[0], "send to=b") ||
		!strings.Contains(lines[1], "recv from=a") {
		t.Fatalf("log lines = %v", lines)
	}
}

func TestRegisterBaseHello(t *testing.T) {
	c := NewCodec()
	RegisterBase(c)
	data, err := c.Encode(&Hello{Addr: "127.0.0.1:9"})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	h, ok := got.(*Hello)
	if !ok || h.Addr != "127.0.0.1:9" {
		t.Fatalf("got %#v", got)
	}
}
