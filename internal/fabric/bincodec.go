package fabric

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
)

// BinaryCodec is the allocation-conscious alternative to the JSON envelope:
// a length-prefixed binary frame instead of nested JSON documents. It
// shares a registry with a JSON *Codec, so the same Register calls serve
// both, and codecs are selected per endpoint (FromTransport takes either).
//
// Frame layout:
//
//	[0]  magic 0xC5
//	[1]  version (1)
//	[2]  body encoding: 0 = JSON body, 1 = binary body
//	[3]  tag length (tags are short path-like strings, ≤255 bytes)
//	[4:] tag, then a big-endian uint32 body length, then the body
//
// Payload types that implement BinaryAppender/BinaryParser get a
// hand-rolled binary body (no reflection, no intermediate buffers);
// everything else falls back to a JSON body inside the binary frame,
// which still skips the outer envelope document and its RawMessage copy.
//
// Decode interoperates with JSON peers: a frame that does not start with
// the magic byte is handed to the underlying JSON codec, so a
// binary-selected endpoint can survive a mixed deployment while it rolls
// out.
type BinaryCodec struct {
	reg *Codec
}

// NewBinaryCodec wraps a registry codec. Register payload types on reg;
// both codecs then carry them.
func NewBinaryCodec(reg *Codec) *BinaryCodec { return &BinaryCodec{reg: reg} }

// BinaryAppender is implemented by payload types with a hand-rolled binary
// body encoding. AppendBinary appends the encoded body to dst and returns
// the extended slice (the append idiom: no intermediate allocation).
type BinaryAppender interface {
	AppendBinary(dst []byte) ([]byte, error)
}

// BinaryParser is the decode half of BinaryAppender. ParseBinary parses
// an encoded body produced by AppendBinary into the receiver.
type BinaryParser interface {
	ParseBinary(data []byte) error
}

const (
	binMagic   = 0xC5
	binVersion = 1
	bodyJSON   = 0
	bodyBinary = 1
)

// MaxBinaryFrame bounds the declared body length a binary frame may carry;
// larger declarations are rejected before any allocation happens, so a
// corrupt or hostile length prefix cannot balloon memory.
const MaxBinaryFrame = 16 << 20

// Errors surfaced by binary frame parsing.
var (
	ErrTruncatedFrame = errors.New("fabric: truncated binary frame")
	ErrOversizedFrame = errors.New("fabric: binary frame body length exceeds limit")
)

// Encode frames payload under its registered tag.
//
//cscw:hotpath
func (c *BinaryCodec) Encode(payload any) ([]byte, error) {
	t := reflect.TypeOf(payload)
	for t != nil && t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	c.reg.mu.RLock()
	tag, ok := c.reg.byTyp[t]
	c.reg.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("fabric: no tag registered for payload type %T", payload)
	}
	if len(tag) > 255 {
		return nil, fmt.Errorf("fabric: tag %q too long for binary frame", tag)
	}
	dst := make([]byte, 0, 64+len(tag))
	enc := byte(bodyJSON)
	if _, ok := payload.(BinaryAppender); ok {
		enc = bodyBinary
	}
	dst = append(dst, binMagic, binVersion, enc, byte(len(tag)))
	dst = append(dst, tag...)
	lenAt := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	if enc == bodyBinary {
		var err error
		dst, err = payload.(BinaryAppender).AppendBinary(dst)
		if err != nil {
			return nil, fmt.Errorf("fabric: binary-encode %s body: %w", tag, err)
		}
	} else {
		body, err := json.Marshal(payload)
		if err != nil {
			return nil, fmt.Errorf("fabric: marshal %s body: %w", tag, err)
		}
		dst = append(dst, body...)
	}
	bodyLen := len(dst) - lenAt - 4
	if bodyLen > MaxBinaryFrame {
		return nil, fmt.Errorf("%w: %d bytes", ErrOversizedFrame, bodyLen)
	}
	binary.BigEndian.PutUint32(dst[lenAt:], uint32(bodyLen))
	return dst, nil
}

// Decode parses a frame into a pointer to the registered type for its tag.
// Unknown tags return (nil, nil) so callers can skip foreign traffic, as
// with the JSON codec; malformed frames (bad version, truncation, a length
// prefix past the limit or disagreeing with the actual frame size) are
// errors. Frames without the binary magic byte are delegated to the
// underlying JSON codec.
//
//cscw:hotpath
func (c *BinaryCodec) Decode(data []byte) (any, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("%w: empty", ErrTruncatedFrame)
	}
	if data[0] != binMagic {
		return c.reg.Decode(data)
	}
	if len(data) < 4 {
		return nil, fmt.Errorf("%w: %d-byte header", ErrTruncatedFrame, len(data))
	}
	if data[1] != binVersion {
		return nil, fmt.Errorf("fabric: unknown binary frame version %d", data[1])
	}
	enc := data[2]
	tagLen := int(data[3])
	rest := data[4:]
	if len(rest) < tagLen+4 {
		return nil, fmt.Errorf("%w: header declares %d-byte tag, %d bytes remain", ErrTruncatedFrame, tagLen, len(rest))
	}
	tag := rest[:tagLen]
	bodyLen := binary.BigEndian.Uint32(rest[tagLen : tagLen+4])
	if bodyLen > MaxBinaryFrame {
		return nil, fmt.Errorf("%w: declared %d bytes", ErrOversizedFrame, bodyLen)
	}
	body := rest[tagLen+4:]
	if uint32(len(body)) < bodyLen {
		return nil, fmt.Errorf("%w: declared %d-byte body, %d bytes remain", ErrTruncatedFrame, bodyLen, len(body))
	}
	if uint32(len(body)) > bodyLen {
		return nil, fmt.Errorf("fabric: binary frame carries %d trailing bytes", uint32(len(body))-bodyLen)
	}
	c.reg.mu.RLock()
	t, ok := c.reg.byTag[string(tag)]
	c.reg.mu.RUnlock()
	if !ok {
		return nil, nil
	}
	out := reflect.New(t).Interface()
	switch enc {
	case bodyBinary:
		bp, ok := out.(BinaryParser)
		if !ok {
			return nil, fmt.Errorf("fabric: binary body for %s but %T implements no BinaryParser", string(tag), out)
		}
		if err := bp.ParseBinary(body); err != nil {
			return nil, fmt.Errorf("fabric: binary-decode %s body: %w", string(tag), err)
		}
	case bodyJSON:
		if err := json.Unmarshal(body, out); err != nil {
			return nil, fmt.Errorf("fabric: decode %s body: %w", string(tag), err)
		}
	default:
		return nil, fmt.Errorf("fabric: unknown body encoding %d", enc)
	}
	return out, nil
}

// --- binary body building blocks ---------------------------------------
//
// Small append/consume helpers for hand-rolled binary bodies (uvarint
// integers, length-prefixed strings). Session and friends build their
// BinaryAppender/BinaryParser implementations from these.

// AppendUvarint appends v as a varint.
func AppendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

// AppendString appends s as a uvarint length prefix plus bytes.
func AppendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// ConsumeUvarint reads a varint from data, returning the value and the
// remaining bytes.
func ConsumeUvarint(data []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(data)
	if n <= 0 {
		return 0, nil, fmt.Errorf("%w: bad uvarint", ErrTruncatedFrame)
	}
	return v, data[n:], nil
}

// ConsumeString reads a length-prefixed string from data, returning the
// string and the remaining bytes.
func ConsumeString(data []byte) (string, []byte, error) {
	n, rest, err := ConsumeUvarint(data)
	if err != nil {
		return "", nil, err
	}
	if uint64(len(rest)) < n {
		return "", nil, fmt.Errorf("%w: string declares %d bytes, %d remain", ErrTruncatedFrame, n, len(rest))
	}
	return string(rest[:n]), rest[n:], nil
}

// AppendBinary implements BinaryAppender for the fabric Hello.
func (h Hello) AppendBinary(dst []byte) ([]byte, error) {
	return AppendString(dst, h.Addr), nil
}

// ParseBinary implements BinaryParser for the fabric Hello.
func (h *Hello) ParseBinary(data []byte) error {
	addr, rest, err := ConsumeString(data)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return fmt.Errorf("fabric: hello body carries %d trailing bytes", len(rest))
	}
	h.Addr = addr
	return nil
}
