package crdt

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/fabric"
	"repro/internal/vclock"
)

// Binary bodies for the CRDT wire messages (fabric.BinaryAppender /
// BinaryParser). Op traffic is per-keystroke and state gossip is periodic,
// so both get hand-rolled bodies: uvarint integers, length-prefixed
// strings, zigzag varints for signed deltas. Map-backed state is encoded
// in sorted key order so equal states produce identical bytes — the
// convergence checks in chaos and the fuzzers compare encodings directly.

func appendID(dst []byte, id ID) []byte {
	dst = fabric.AppendUvarint(dst, id.N)
	return fabric.AppendString(dst, id.Site)
}

func consumeID(data []byte) (ID, []byte, error) {
	var id ID
	var err error
	if id.N, data, err = fabric.ConsumeUvarint(data); err != nil {
		return id, nil, err
	}
	if id.Site, data, err = fabric.ConsumeString(data); err != nil {
		return id, nil, err
	}
	return id, data, nil
}

func appendIDs(dst []byte, ids []ID) []byte {
	dst = fabric.AppendUvarint(dst, uint64(len(ids)))
	for _, id := range ids {
		dst = appendID(dst, id)
	}
	return dst
}

func consumeIDs(data []byte) ([]ID, []byte, error) {
	n, data, err := fabric.ConsumeUvarint(data)
	if err != nil {
		return nil, nil, err
	}
	if n == 0 {
		return nil, data, nil
	}
	// An ID takes at least 2 bytes; bound the allocation by what the body
	// could actually hold so a corrupt count cannot balloon memory.
	if n > uint64(len(data)) {
		return nil, nil, fmt.Errorf("%w: %d ids in %d bytes", fabric.ErrTruncatedFrame, n, len(data))
	}
	ids := make([]ID, 0, n)
	for i := uint64(0); i < n; i++ {
		var id ID
		if id, data, err = consumeID(data); err != nil {
			return nil, nil, err
		}
		ids = append(ids, id)
	}
	return ids, data, nil
}

func appendVC(dst []byte, vv vclock.VC) []byte {
	sites := make([]string, 0, len(vv))
	for site := range vv {
		sites = append(sites, site)
	}
	sort.Strings(sites)
	dst = fabric.AppendUvarint(dst, uint64(len(sites)))
	for _, site := range sites {
		dst = fabric.AppendString(dst, site)
		dst = fabric.AppendUvarint(dst, vv[site])
	}
	return dst
}

func consumeVC(data []byte) (vclock.VC, []byte, error) {
	n, data, err := fabric.ConsumeUvarint(data)
	if err != nil {
		return nil, nil, err
	}
	if n > uint64(len(data)) {
		return nil, nil, fmt.Errorf("%w: %d vector entries in %d bytes", fabric.ErrTruncatedFrame, n, len(data))
	}
	vv := vclock.New()
	for i := uint64(0); i < n; i++ {
		var site string
		var v uint64
		if site, data, err = fabric.ConsumeString(data); err != nil {
			return nil, nil, err
		}
		if v, data, err = fabric.ConsumeUvarint(data); err != nil {
			return nil, nil, err
		}
		vv[site] = v
	}
	return vv, data, nil
}

func appendOp(dst []byte, op Op) []byte {
	dst = append(dst, byte(op.Kind))
	dst = fabric.AppendString(dst, op.Site)
	dst = fabric.AppendUvarint(dst, op.Seq)
	dst = appendID(dst, op.ID)
	dst = appendID(dst, op.After)
	dst = fabric.AppendUvarint(dst, uint64(uint32(op.Ch)))
	dst = fabric.AppendString(dst, op.Elem)
	dst = appendIDs(dst, op.Dots)
	return binary.AppendVarint(dst, op.Delta)
}

func consumeOp(data []byte) (Op, []byte, error) {
	var op Op
	if len(data) == 0 {
		return op, nil, fmt.Errorf("%w: missing op kind", fabric.ErrTruncatedFrame)
	}
	op.Kind = OpKind(data[0])
	data = data[1:]
	var err error
	if op.Site, data, err = fabric.ConsumeString(data); err != nil {
		return op, nil, err
	}
	if op.Seq, data, err = fabric.ConsumeUvarint(data); err != nil {
		return op, nil, err
	}
	if op.ID, data, err = consumeID(data); err != nil {
		return op, nil, err
	}
	if op.After, data, err = consumeID(data); err != nil {
		return op, nil, err
	}
	var ch uint64
	if ch, data, err = fabric.ConsumeUvarint(data); err != nil {
		return op, nil, err
	}
	op.Ch = rune(uint32(ch))
	if op.Elem, data, err = fabric.ConsumeString(data); err != nil {
		return op, nil, err
	}
	if op.Dots, data, err = consumeIDs(data); err != nil {
		return op, nil, err
	}
	delta, n := binary.Varint(data)
	if n <= 0 {
		return op, nil, fmt.Errorf("%w: bad delta varint", fabric.ErrTruncatedFrame)
	}
	op.Delta = delta
	return op, data[n:], nil
}

// done rejects trailing bytes after a fully parsed body.
func done(what string, rest []byte) error {
	if len(rest) != 0 {
		return fmt.Errorf("crdt: %s body carries %d trailing bytes", what, len(rest))
	}
	return nil
}

// AppendBinary implements fabric.BinaryAppender.
func (m MsgOp) AppendBinary(dst []byte) ([]byte, error) {
	dst = fabric.AppendString(dst, m.Doc)
	return appendOp(dst, m.Op), nil
}

// ParseBinary implements fabric.BinaryParser.
func (m *MsgOp) ParseBinary(data []byte) error {
	var err error
	if m.Doc, data, err = fabric.ConsumeString(data); err != nil {
		return err
	}
	if m.Op, data, err = consumeOp(data); err != nil {
		return err
	}
	return done("op", data)
}

func appendSeqState(dst []byte, st *SeqState) []byte {
	dst = fabric.AppendUvarint(dst, uint64(len(st.Nodes)))
	for _, n := range st.Nodes {
		dst = appendID(dst, n.ID)
		dst = appendID(dst, n.After)
		dst = fabric.AppendUvarint(dst, uint64(uint32(n.Ch)))
		del := byte(0)
		if n.Deleted {
			del = 1
		}
		dst = append(dst, del)
	}
	return appendVC(dst, st.VV)
}

func consumeSeqState(data []byte) (*SeqState, []byte, error) {
	n, data, err := fabric.ConsumeUvarint(data)
	if err != nil {
		return nil, nil, err
	}
	if n > uint64(len(data)) {
		return nil, nil, fmt.Errorf("%w: %d nodes in %d bytes", fabric.ErrTruncatedFrame, n, len(data))
	}
	st := &SeqState{Nodes: make([]SeqNode, 0, n)}
	for i := uint64(0); i < n; i++ {
		var node SeqNode
		if node.ID, data, err = consumeID(data); err != nil {
			return nil, nil, err
		}
		if node.After, data, err = consumeID(data); err != nil {
			return nil, nil, err
		}
		var ch uint64
		if ch, data, err = fabric.ConsumeUvarint(data); err != nil {
			return nil, nil, err
		}
		node.Ch = rune(uint32(ch))
		if len(data) == 0 {
			return nil, nil, fmt.Errorf("%w: missing tombstone flag", fabric.ErrTruncatedFrame)
		}
		node.Deleted = data[0] == 1
		data = data[1:]
		st.Nodes = append(st.Nodes, node)
	}
	if st.VV, data, err = consumeVC(data); err != nil {
		return nil, nil, err
	}
	return st, data, nil
}

func appendSetState(dst []byte, st *SetState) []byte {
	elems := make([]string, 0, len(st.Elems))
	for elem := range st.Elems {
		elems = append(elems, elem)
	}
	sort.Strings(elems)
	dst = fabric.AppendUvarint(dst, uint64(len(elems)))
	for _, elem := range elems {
		dst = fabric.AppendString(dst, elem)
		dst = appendIDs(dst, st.Elems[elem])
	}
	dst = appendIDs(dst, st.Removed)
	return appendVC(dst, st.VV)
}

func consumeSetState(data []byte) (*SetState, []byte, error) {
	n, data, err := fabric.ConsumeUvarint(data)
	if err != nil {
		return nil, nil, err
	}
	if n > uint64(len(data)) {
		return nil, nil, fmt.Errorf("%w: %d elements in %d bytes", fabric.ErrTruncatedFrame, n, len(data))
	}
	st := &SetState{Elems: make(map[string][]ID, n)}
	for i := uint64(0); i < n; i++ {
		var elem string
		var ids []ID
		if elem, data, err = fabric.ConsumeString(data); err != nil {
			return nil, nil, err
		}
		if ids, data, err = consumeIDs(data); err != nil {
			return nil, nil, err
		}
		st.Elems[elem] = ids
	}
	if st.Removed, data, err = consumeIDs(data); err != nil {
		return nil, nil, err
	}
	if st.VV, data, err = consumeVC(data); err != nil {
		return nil, nil, err
	}
	return st, data, nil
}

func appendCtrState(dst []byte, st *CtrState) []byte {
	dst = appendSiteCounts(dst, st.Pos)
	dst = appendSiteCounts(dst, st.Neg)
	return appendVC(dst, st.VV)
}

func appendSiteCounts(dst []byte, m map[string]uint64) []byte {
	sites := make([]string, 0, len(m))
	for site := range m {
		sites = append(sites, site)
	}
	sort.Strings(sites)
	dst = fabric.AppendUvarint(dst, uint64(len(sites)))
	for _, site := range sites {
		dst = fabric.AppendString(dst, site)
		dst = fabric.AppendUvarint(dst, m[site])
	}
	return dst
}

func consumeSiteCounts(data []byte) (map[string]uint64, []byte, error) {
	n, data, err := fabric.ConsumeUvarint(data)
	if err != nil {
		return nil, nil, err
	}
	if n > uint64(len(data)) {
		return nil, nil, fmt.Errorf("%w: %d site counts in %d bytes", fabric.ErrTruncatedFrame, n, len(data))
	}
	m := make(map[string]uint64, n)
	for i := uint64(0); i < n; i++ {
		var site string
		var v uint64
		if site, data, err = fabric.ConsumeString(data); err != nil {
			return nil, nil, err
		}
		if v, data, err = fabric.ConsumeUvarint(data); err != nil {
			return nil, nil, err
		}
		m[site] = v
	}
	return m, data, nil
}

func consumeCtrState(data []byte) (*CtrState, []byte, error) {
	st := &CtrState{}
	var err error
	if st.Pos, data, err = consumeSiteCounts(data); err != nil {
		return nil, nil, err
	}
	if st.Neg, data, err = consumeSiteCounts(data); err != nil {
		return nil, nil, err
	}
	if st.VV, data, err = consumeVC(data); err != nil {
		return nil, nil, err
	}
	return st, data, nil
}

// State-kind discriminators in the MsgState binary body.
const (
	stateSeq = 1
	stateSet = 2
	stateCtr = 3
)

// AppendBinary implements fabric.BinaryAppender.
func (m MsgState) AppendBinary(dst []byte) ([]byte, error) {
	dst = fabric.AppendString(dst, m.Doc)
	switch {
	case m.Seq != nil:
		return appendSeqState(append(dst, stateSeq), m.Seq), nil
	case m.Set != nil:
		return appendSetState(append(dst, stateSet), m.Set), nil
	case m.Ctr != nil:
		return appendCtrState(append(dst, stateCtr), m.Ctr), nil
	default:
		return nil, fmt.Errorf("crdt: state message carries no state")
	}
}

// ParseBinary implements fabric.BinaryParser.
func (m *MsgState) ParseBinary(data []byte) error {
	var err error
	if m.Doc, data, err = fabric.ConsumeString(data); err != nil {
		return err
	}
	if len(data) == 0 {
		return fmt.Errorf("%w: missing state kind", fabric.ErrTruncatedFrame)
	}
	kind := data[0]
	data = data[1:]
	switch kind {
	case stateSeq:
		if m.Seq, data, err = consumeSeqState(data); err != nil {
			return err
		}
	case stateSet:
		if m.Set, data, err = consumeSetState(data); err != nil {
			return err
		}
	case stateCtr:
		if m.Ctr, data, err = consumeCtrState(data); err != nil {
			return err
		}
	default:
		return fmt.Errorf("crdt: unknown state kind %d", kind)
	}
	return done("state", data)
}
