package crdt

import (
	"math/rand"
	"reflect"
	"testing"
)

// The property sweep: for each seed, a cluster of replicas generates random
// local ops while deliveries are reordered, duplicated and delayed
// arbitrarily; once every op has reached every replica, all replicas must
// hold identical state with empty hold-back queues. Run with -short to
// trim the sweep. propertySeeds keeps the full sweep above the 100
// permutations the acceptance bar asks for.
const propertySeeds = 120

func sweepSeeds(t *testing.T) int {
	if testing.Short() {
		return 20
	}
	return propertySeeds
}

type delivery struct {
	op Op
	to int
}

// scramble drives one randomized run: gen produces a local op at a random
// site, apply delivers one to a replica. Deliveries are picked in random
// order from the pending pool (reorder), occasionally re-sent from the log
// (duplication), and the tail flushes in shuffled order.
func scramble(r *rand.Rand, sites int, gen func(r *rand.Rand, site int) (Op, bool), apply func(site int, op Op)) {
	var pending []delivery
	var log []Op
	steps := 80 + r.Intn(120)
	for i := 0; i < steps; i++ {
		switch {
		case len(pending) > 0 && r.Intn(100) < 45:
			j := r.Intn(len(pending))
			d := pending[j]
			pending[j] = pending[len(pending)-1]
			pending = pending[:len(pending)-1]
			apply(d.to, d.op)
		case len(log) > 0 && r.Intn(100) < 10:
			apply(r.Intn(sites), log[r.Intn(len(log))])
		default:
			site := r.Intn(sites)
			op, ok := gen(r, site)
			if !ok {
				continue
			}
			log = append(log, op)
			for to := 0; to < sites; to++ {
				if to != site {
					pending = append(pending, delivery{op, to})
				}
			}
		}
	}
	r.Shuffle(len(pending), func(i, j int) { pending[i], pending[j] = pending[j], pending[i] })
	for _, d := range pending {
		apply(d.to, d.op)
	}
}

func TestSequenceConvergesUnderPermutations(t *testing.T) {
	for seed := 0; seed < sweepSeeds(t); seed++ {
		r := rand.New(rand.NewSource(int64(seed)))
		n := 2 + r.Intn(3)
		reps := make([]*Sequence, n)
		for i := range reps {
			reps[i] = NewSequence(string(rune('a' + i)))
		}
		scramble(r, n,
			func(r *rand.Rand, site int) (Op, bool) {
				s := reps[site]
				var op Op
				var err error
				if s.Len() == 0 || r.Intn(100) < 65 {
					op, err = s.Insert(r.Intn(s.Len()+1), rune('a'+r.Intn(26)))
				} else {
					op, err = s.Delete(r.Intn(s.Len()))
				}
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				return op, true
			},
			func(site int, op Op) {
				if err := reps[site].Apply(op); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
			})
		for i := 1; i < n; i++ {
			if reps[i].Text() != reps[0].Text() {
				t.Fatalf("seed %d: replica %d diverged: %q vs %q", seed, i, reps[i].Text(), reps[0].Text())
			}
			if !reflect.DeepEqual(reps[i].State(), reps[0].State()) {
				t.Fatalf("seed %d: replica %d full state diverged", seed, i)
			}
		}
		for i, s := range reps {
			if s.Held() != 0 {
				t.Fatalf("seed %d: replica %d still holds %d ops", seed, i, s.Held())
			}
		}
	}
}

func TestSetConvergesUnderPermutations(t *testing.T) {
	universe := []string{"alpha", "beta", "gamma", "delta"}
	for seed := 0; seed < sweepSeeds(t); seed++ {
		r := rand.New(rand.NewSource(int64(seed)))
		n := 2 + r.Intn(3)
		reps := make([]*Set, n)
		for i := range reps {
			reps[i] = NewSet(string(rune('a' + i)))
		}
		scramble(r, n,
			func(r *rand.Rand, site int) (Op, bool) {
				elem := universe[r.Intn(len(universe))]
				if r.Intn(100) < 60 {
					return reps[site].Add(elem), true
				}
				return reps[site].Remove(elem), true
			},
			func(site int, op Op) {
				if err := reps[site].Apply(op); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
			})
		for i := 1; i < n; i++ {
			if !reflect.DeepEqual(reps[i].Elements(), reps[0].Elements()) {
				t.Fatalf("seed %d: replica %d diverged: %v vs %v", seed, i, reps[i].Elements(), reps[0].Elements())
			}
			if !reflect.DeepEqual(reps[i].State(), reps[0].State()) {
				t.Fatalf("seed %d: replica %d full state diverged", seed, i)
			}
		}
		for i, s := range reps {
			if s.Held() != 0 {
				t.Fatalf("seed %d: replica %d still holds %d ops", seed, i, s.Held())
			}
		}
	}
}

func TestCounterConvergesUnderPermutations(t *testing.T) {
	for seed := 0; seed < sweepSeeds(t); seed++ {
		r := rand.New(rand.NewSource(int64(seed)))
		n := 2 + r.Intn(3)
		reps := make([]*Counter, n)
		for i := range reps {
			reps[i] = NewCounter(string(rune('a' + i)))
		}
		var want int64
		scramble(r, n,
			func(r *rand.Rand, site int) (Op, bool) {
				delta := int64(r.Intn(41) - 20)
				want += delta
				return reps[site].Add(delta), true
			},
			func(site int, op Op) {
				if err := reps[site].Apply(op); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
			})
		for i, c := range reps {
			if c.Value() != want {
				t.Fatalf("seed %d: replica %d value %d want %d", seed, i, c.Value(), want)
			}
			if c.Held() != 0 {
				t.Fatalf("seed %d: replica %d still holds %d ops", seed, i, c.Held())
			}
		}
	}
}

// randomSequences builds independently edited replicas with partial op
// exchange — raw material for the merge-law tests.
func randomSequences(r *rand.Rand, n int) []*Sequence {
	reps := make([]*Sequence, n)
	for i := range reps {
		reps[i] = NewSequence(string(rune('a' + i)))
	}
	var log []Op
	for step := 0; step < 40; step++ {
		site := r.Intn(n)
		s := reps[site]
		var op Op
		if s.Len() == 0 || r.Intn(100) < 70 {
			op, _ = s.Insert(r.Intn(s.Len()+1), rune('a'+r.Intn(26)))
		} else {
			op, _ = s.Delete(r.Intn(s.Len()))
		}
		log = append(log, op)
		// Partial delivery: each other site hears about it half the time.
		// Skipping an op can leave later FIFO ops held — that is the point:
		// merge must still converge from ragged states.
		for to := 0; to < n; to++ {
			if to != site && r.Intn(2) == 0 {
				_ = reps[to].Apply(log[len(log)-1])
			}
		}
	}
	return reps
}

func mergedSeq(t *testing.T, states ...*SeqState) *SeqState {
	acc := NewSequence("merge")
	for _, st := range states {
		if err := acc.MergeState(st); err != nil {
			t.Fatal(err)
		}
	}
	return acc.State()
}

func TestSequenceMergeLaws(t *testing.T) {
	for seed := 0; seed < 40; seed++ {
		r := rand.New(rand.NewSource(int64(1000 + seed)))
		reps := randomSequences(r, 3)
		a, b, c := reps[0].State(), reps[1].State(), reps[2].State()

		// Idempotence: x ⊔ x = x.
		if !reflect.DeepEqual(mergedSeq(t, a, a), mergedSeq(t, a)) {
			t.Fatalf("seed %d: sequence merge not idempotent", seed)
		}
		// Commutativity: a ⊔ b = b ⊔ a.
		if !reflect.DeepEqual(mergedSeq(t, a, b), mergedSeq(t, b, a)) {
			t.Fatalf("seed %d: sequence merge not commutative", seed)
		}
		// Associativity: (a ⊔ b) ⊔ c = a ⊔ (b ⊔ c).
		left := mergedSeq(t, mergedSeq(t, a, b), c)
		right := mergedSeq(t, a, mergedSeq(t, b, c))
		if !reflect.DeepEqual(left, right) {
			t.Fatalf("seed %d: sequence merge not associative", seed)
		}
	}
}

func TestSetAndCounterMergeLaws(t *testing.T) {
	universe := []string{"x", "y", "z"}
	mergedSet := func(states ...*SetState) *SetState {
		acc := NewSet("merge")
		for _, st := range states {
			acc.MergeState(st)
		}
		return acc.State()
	}
	mergedCtr := func(states ...*CtrState) *CtrState {
		acc := NewCounter("merge")
		for _, st := range states {
			acc.MergeState(st)
		}
		return acc.State()
	}
	for seed := 0; seed < 40; seed++ {
		r := rand.New(rand.NewSource(int64(2000 + seed)))
		sets := make([]*Set, 3)
		ctrs := make([]*Counter, 3)
		for i := range sets {
			sets[i] = NewSet(string(rune('a' + i)))
			ctrs[i] = NewCounter(string(rune('a' + i)))
		}
		for step := 0; step < 30; step++ {
			i := r.Intn(3)
			elem := universe[r.Intn(len(universe))]
			var op Op
			if r.Intn(2) == 0 {
				op = sets[i].Add(elem)
			} else {
				op = sets[i].Remove(elem)
			}
			cop := ctrs[i].Add(int64(r.Intn(21) - 10))
			for to := 0; to < 3; to++ {
				if to != i && r.Intn(2) == 0 {
					_ = sets[to].Apply(op)
					_ = ctrs[to].Apply(cop)
				}
			}
		}
		sa, sb, sc := sets[0].State(), sets[1].State(), sets[2].State()
		ca, cb, cc := ctrs[0].State(), ctrs[1].State(), ctrs[2].State()
		if !reflect.DeepEqual(mergedSet(sa, sa), mergedSet(sa)) {
			t.Fatalf("seed %d: set merge not idempotent", seed)
		}
		if !reflect.DeepEqual(mergedSet(sa, sb), mergedSet(sb, sa)) {
			t.Fatalf("seed %d: set merge not commutative", seed)
		}
		if !reflect.DeepEqual(mergedSet(mergedSet(sa, sb), sc), mergedSet(sa, mergedSet(sb, sc))) {
			t.Fatalf("seed %d: set merge not associative", seed)
		}
		if !reflect.DeepEqual(mergedCtr(ca, ca), mergedCtr(ca)) {
			t.Fatalf("seed %d: counter merge not idempotent", seed)
		}
		if !reflect.DeepEqual(mergedCtr(ca, cb), mergedCtr(cb, ca)) {
			t.Fatalf("seed %d: counter merge not commutative", seed)
		}
		if !reflect.DeepEqual(mergedCtr(mergedCtr(ca, cb), cc), mergedCtr(ca, mergedCtr(cb, cc))) {
			t.Fatalf("seed %d: counter merge not associative", seed)
		}
	}
}
