package crdt

import (
	"reflect"
	"testing"
)

func TestSequenceLocalEditing(t *testing.T) {
	s := NewSequence("a")
	for i, ch := range "hello" {
		if _, err := s.Insert(i, ch); err != nil {
			t.Fatal(err)
		}
	}
	if s.Text() != "hello" {
		t.Fatalf("text %q", s.Text())
	}
	if _, err := s.Delete(0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert(0, 'H'); err != nil {
		t.Fatal(err)
	}
	if s.Text() != "Hello" || s.Len() != 5 {
		t.Fatalf("text %q len %d", s.Text(), s.Len())
	}
	if _, err := s.Insert(-1, 'x'); err == nil {
		t.Fatal("insert at -1 accepted")
	}
	if _, err := s.Insert(s.Len()+1, 'x'); err == nil {
		t.Fatal("insert past end accepted")
	}
	if _, err := s.Delete(s.Len()); err == nil {
		t.Fatal("delete past end accepted")
	}
}

func TestSequenceRemoteReorderAndDuplicates(t *testing.T) {
	a, b := NewSequence("a"), NewSequence("b")
	op1, _ := a.Insert(0, 'x')
	op2, _ := a.Insert(1, 'y') // references op1's element
	// Deliver out of order: the child op is held until its reference lands.
	if err := b.Apply(op2); err != nil {
		t.Fatal(err)
	}
	if b.Held() != 1 || b.Text() != "" {
		t.Fatalf("held %d text %q before reference arrives", b.Held(), b.Text())
	}
	if err := b.Apply(op1); err != nil {
		t.Fatal(err)
	}
	if b.Held() != 0 || b.Text() != "xy" {
		t.Fatalf("held %d text %q after drain", b.Held(), b.Text())
	}
	// Duplicates (including of ops that sat in the hold-back queue) drop.
	for _, op := range []Op{op1, op2, op2} {
		if err := b.Apply(op); err != nil {
			t.Fatal(err)
		}
	}
	if b.Text() != "xy" || b.Held() != 0 {
		t.Fatalf("duplicates changed state: text %q held %d", b.Text(), b.Held())
	}
	if err := b.Apply(Op{Kind: OpSetAdd, Site: "z", Seq: 1}); err == nil {
		t.Fatal("sequence accepted a set op")
	}
}

func TestSequenceConcurrentSiblingOrderIsStable(t *testing.T) {
	// Two sites concurrently type runs at the head; every replica must order
	// the runs identically without interleaving them.
	a, b, c := NewSequence("a"), NewSequence("b"), NewSequence("c")
	a1, _ := a.Insert(0, 'a')
	a2, _ := a.Insert(1, 'A')
	b1, _ := b.Insert(0, 'b')
	b2, _ := b.Insert(1, 'B')
	orders := [][]Op{
		{a1, a2, b1, b2},
		{b1, b2, a1, a2},
		{b1, a1, b2, a2},
	}
	texts := map[string]bool{}
	for i, r := range []*Sequence{c, NewSequence("d"), NewSequence("e")} {
		for _, op := range orders[i] {
			if err := r.Apply(op); err != nil {
				t.Fatal(err)
			}
		}
		texts[r.Text()] = true
	}
	if len(texts) != 1 {
		t.Fatalf("delivery order changed the document: %v", texts)
	}
	for text := range texts {
		if text != "aAbB" && text != "bBaA" {
			t.Fatalf("runs interleaved: %q", text)
		}
	}
}

func TestSequenceMergeState(t *testing.T) {
	a, b := NewSequence("a"), NewSequence("b")
	if _, err := a.Insert(0, 'x'); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Insert(0, 'y'); err != nil {
		t.Fatal(err)
	}
	if err := a.MergeState(b.State()); err != nil {
		t.Fatal(err)
	}
	if err := b.MergeState(a.State()); err != nil {
		t.Fatal(err)
	}
	if a.Text() != b.Text() {
		t.Fatalf("states diverged: %q vs %q", a.Text(), b.Text())
	}
	if !reflect.DeepEqual(a.State(), b.State()) {
		t.Fatalf("full states diverged:\n%+v\n%+v", a.State(), b.State())
	}
	// A state element with a dangling reference is corrupt.
	bad := &SeqState{Nodes: []SeqNode{{ID: ID{N: 9, Site: "z"}, After: ID{N: 8, Site: "z"}, Ch: 'q'}}}
	if err := NewSequence("f").MergeState(bad); err == nil {
		t.Fatal("dangling reference accepted")
	}
}

func TestSetAddWins(t *testing.T) {
	a, b := NewSet("a"), NewSet("b")
	add := a.Add("doc")
	if err := b.Apply(add); err != nil {
		t.Fatal(err)
	}
	// b removes having observed a's dot; concurrently a re-adds.
	rm := b.Remove("doc")
	re := a.Add("doc")
	if err := a.Apply(rm); err != nil {
		t.Fatal(err)
	}
	if err := b.Apply(re); err != nil {
		t.Fatal(err)
	}
	if !a.Contains("doc") || !b.Contains("doc") {
		t.Fatalf("concurrent add lost to remove: a=%v b=%v", a.Contains("doc"), b.Contains("doc"))
	}
	if got := a.Elements(); len(got) != 1 || got[0] != "doc" {
		t.Fatalf("elements %v", got)
	}
}

func TestSetRemoveBeforeAddArrives(t *testing.T) {
	// c hears about the removal of a's dot before the add itself: the
	// tombstone must still win when the add finally lands.
	a, b, c := NewSet("a"), NewSet("b"), NewSet("c")
	add := a.Add("x")
	if err := b.Apply(add); err != nil {
		t.Fatal(err)
	}
	rm := b.Remove("x")
	if err := c.Apply(rm); err != nil {
		t.Fatal(err)
	}
	if err := c.Apply(add); err != nil {
		t.Fatal(err)
	}
	if c.Contains("x") {
		t.Fatal("tombstoned add resurfaced")
	}
	if err := c.Apply(Op{Kind: OpCtrAdd, Site: "z", Seq: 1}); err == nil {
		t.Fatal("set accepted a counter op")
	}
}

func TestCounterValueAndMerge(t *testing.T) {
	a, b := NewCounter("a"), NewCounter("b")
	ops := []Op{a.Add(5), a.Add(-2), b.Add(10)}
	for _, op := range ops[:2] {
		if err := b.Apply(op); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Apply(ops[2]); err != nil {
		t.Fatal(err)
	}
	if a.Value() != 13 || b.Value() != 13 {
		t.Fatalf("values %d %d", a.Value(), b.Value())
	}
	// Duplicate and state-merge idempotence.
	if err := b.Apply(ops[0]); err != nil {
		t.Fatal(err)
	}
	b.MergeState(a.State())
	if b.Value() != 13 {
		t.Fatalf("value after dup+merge %d", b.Value())
	}
	if err := b.Apply(Op{Kind: OpSeqInsert, Site: "z", Seq: 1}); err == nil {
		t.Fatal("counter accepted a sequence op")
	}
}

func TestCounterFIFOGap(t *testing.T) {
	a, b := NewCounter("a"), NewCounter("b")
	op1 := a.Add(1)
	op2 := a.Add(2)
	if err := b.Apply(op2); err != nil {
		t.Fatal(err)
	}
	if b.Held() != 1 || b.Value() != 0 {
		t.Fatalf("gap not held: held %d value %d", b.Held(), b.Value())
	}
	if err := b.Apply(op1); err != nil {
		t.Fatal(err)
	}
	if b.Held() != 0 || b.Value() != 3 {
		t.Fatalf("after drain: held %d value %d", b.Held(), b.Value())
	}
}
