package crdt

import (
	"fmt"
	"sort"

	"repro/internal/vclock"
)

// Set is an observed-remove set (OR-set) with add-wins semantics: every
// Add mints a unique dot (the op's ID), and a Remove kills only the dots
// its issuer had observed. A concurrent Add therefore survives a Remove —
// the behaviour a shared workspace wants when one participant re-adds an
// item another is pruning. Removed dots are tombstoned so an Add arriving
// after the Remove that observed it (possible across sites even with
// per-site FIFO delivery) still loses.
type Set struct {
	site    string
	opSeq   uint64
	vv      vclock.VC
	dots    map[string]map[ID]struct{} // element -> live add dots
	removed map[ID]struct{}            // dots killed by a remove
	held    []Op
}

// NewSet returns an empty replica owned by site.
func NewSet(site string) *Set {
	return &Set{
		site:    site,
		vv:      vclock.New(),
		dots:    make(map[string]map[ID]struct{}),
		removed: make(map[ID]struct{}),
	}
}

// Site returns the replica's site identifier.
func (s *Set) Site() string { return s.site }

// Held returns the number of remote ops waiting on FIFO order.
func (s *Set) Held() int { return len(s.held) }

// VV returns a copy of the applied-operation vector.
func (s *Set) VV() vclock.VC { return s.vv.Clone() }

// Contains reports whether elem is in the set.
func (s *Set) Contains(elem string) bool { return len(s.dots[elem]) > 0 }

// Elements returns the members in sorted order.
func (s *Set) Elements() []string {
	out := make([]string, 0, len(s.dots))
	for elem, m := range s.dots {
		if len(m) > 0 {
			out = append(out, elem)
		}
	}
	sort.Strings(out)
	return out
}

// Add applies a local addition and returns the op to broadcast. The op's
// ID is the fresh dot.
func (s *Set) Add(elem string) Op {
	s.opSeq++
	op := Op{
		Kind: OpSetAdd,
		Site: s.site,
		Seq:  s.opSeq,
		ID:   ID{N: s.opSeq, Site: s.site},
		Elem: elem,
	}
	s.applyOp(op)
	s.vv.Tick(s.site)
	return op
}

// Remove applies a local removal and returns the op to broadcast. The op
// carries the dots this replica observed for elem; adds it has not seen
// are unaffected (add wins). Removing an absent element is a valid no-op
// op: it keeps the per-site sequence dense.
func (s *Set) Remove(elem string) Op {
	s.opSeq++
	observed := make([]ID, 0, len(s.dots[elem]))
	for dot := range s.dots[elem] {
		observed = append(observed, dot)
	}
	sort.Slice(observed, func(i, j int) bool { return observed[i].Less(observed[j]) })
	op := Op{
		Kind: OpSetRemove,
		Site: s.site,
		Seq:  s.opSeq,
		Elem: elem,
		Dots: observed,
	}
	s.applyOp(op)
	s.vv.Tick(s.site)
	return op
}

// Apply integrates a remote op; duplicates are dropped, FIFO gaps held.
func (s *Set) Apply(op Op) error {
	switch op.Kind {
	case OpSetAdd, OpSetRemove:
	default:
		return fmt.Errorf("crdt: set cannot apply %v op", op.Kind)
	}
	s.held = integrate(s.vv, s.held, op, func(Op) bool { return true }, s.applyOp)
	return nil
}

func (s *Set) applyOp(op Op) {
	switch op.Kind {
	case OpSetAdd:
		if _, gone := s.removed[op.ID]; gone {
			return
		}
		m := s.dots[op.Elem]
		if m == nil {
			m = make(map[ID]struct{})
			s.dots[op.Elem] = m
		}
		m[op.ID] = struct{}{}
	case OpSetRemove:
		for _, dot := range op.Dots {
			s.removed[dot] = struct{}{}
			if m := s.dots[op.Elem]; m != nil {
				delete(m, dot)
				if len(m) == 0 {
					delete(s.dots, op.Elem)
				}
			}
		}
	}
}

// SetState is the full serializable state of a Set: live dots per element,
// the removed-dot tombstones, and the applied-op vector. Slices are sorted
// so equal states encode identically.
type SetState struct {
	Elems   map[string][]ID `json:"elems"`
	Removed []ID            `json:"removed"`
	VV      vclock.VC       `json:"vv"`
}

// State snapshots the replica for anti-entropy.
func (s *Set) State() *SetState {
	st := &SetState{Elems: make(map[string][]ID, len(s.dots)), VV: s.vv.Clone()}
	for elem, m := range s.dots {
		if len(m) == 0 {
			continue
		}
		dots := make([]ID, 0, len(m))
		for dot := range m {
			dots = append(dots, dot)
		}
		sort.Slice(dots, func(i, j int) bool { return dots[i].Less(dots[j]) })
		st.Elems[elem] = dots
	}
	st.Removed = make([]ID, 0, len(s.removed))
	for dot := range s.removed {
		st.Removed = append(st.Removed, dot)
	}
	sort.Slice(st.Removed, func(i, j int) bool { return st.Removed[i].Less(st.Removed[j]) })
	return st
}

// MergeState joins a peer snapshot: tombstones union, live dots union
// minus tombstones, vectors merge, held ops drain. Idempotent,
// commutative, associative.
func (s *Set) MergeState(st *SetState) {
	for _, dot := range st.Removed {
		s.removed[dot] = struct{}{}
	}
	// Drop any of our live dots the peer has removed.
	for elem, m := range s.dots {
		for dot := range m {
			if _, gone := s.removed[dot]; gone {
				delete(m, dot)
			}
		}
		if len(m) == 0 {
			delete(s.dots, elem)
		}
	}
	for elem, dots := range st.Elems {
		for _, dot := range dots {
			if _, gone := s.removed[dot]; gone {
				continue
			}
			m := s.dots[elem]
			if m == nil {
				m = make(map[ID]struct{})
				s.dots[elem] = m
			}
			m[dot] = struct{}{}
		}
	}
	s.vv.Merge(st.VV)
	s.held = drainHeld(s.vv, s.held, func(Op) bool { return true }, s.applyOp)
}
