package crdt

import (
	"fmt"

	"repro/internal/vclock"
)

// Sequence is a replicated growable array (RGA) over runes: the CRDT
// counterpart of the OT document. Each element is identified by the
// Lamport time and site of its insertion; deletion leaves a tombstone so
// concurrent inserts anchored on the deleted element still find their
// reference. Elements live in an arena (a linked list threaded through a
// slice), so integration never shifts memory and the ID index stays valid.
//
// Integration rule: a remote insert placed "after" its reference element
// walks the reference's current successors and skips every element whose
// ID is greater than the new element's. Descendant Lamport times always
// exceed their ancestor's, so the walk skips whole subtrees and concurrent
// siblings order by (time, site) identically at every replica — the RGA
// convergence argument (Roh et al.; Shapiro & Preguiça's CRDT treatment).
type Sequence struct {
	site    string
	clk     vclock.Lamport
	opSeq   uint64
	vv      vclock.VC
	nodes   []seqNode    // arena; nodes[0] is the head sentinel
	index   map[ID]int32 // element ID -> arena index
	visible int
	held    []Op
}

type seqNode struct {
	id      ID
	after   ID // original insert reference (zero = head)
	ch      rune
	deleted bool
	next    int32 // arena index of list successor; -1 ends the list
}

// NewSequence returns an empty replica owned by site.
func NewSequence(site string) *Sequence {
	s := &Sequence{
		site:  site,
		vv:    vclock.New(),
		nodes: make([]seqNode, 1, 64),
		index: make(map[ID]int32),
	}
	s.nodes[0].next = -1
	return s
}

// Site returns the replica's site identifier.
func (s *Sequence) Site() string { return s.site }

// Len returns the number of visible (non-tombstoned) elements.
func (s *Sequence) Len() int { return s.visible }

// Held returns the number of remote ops waiting on FIFO order or missing
// dependencies.
func (s *Sequence) Held() int { return len(s.held) }

// VV returns a copy of the applied-operation vector (ops applied per site).
func (s *Sequence) VV() vclock.VC { return s.vv.Clone() }

// Text renders the visible elements in document order.
func (s *Sequence) Text() string {
	buf := make([]rune, 0, s.visible)
	for i := s.nodes[0].next; i != -1; i = s.nodes[i].next {
		if !s.nodes[i].deleted {
			buf = append(buf, s.nodes[i].ch)
		}
	}
	return string(buf)
}

// visibleAt returns the arena index of the pos-th visible element.
func (s *Sequence) visibleAt(pos int) (int32, error) {
	if pos < 0 || pos >= s.visible {
		return -1, fmt.Errorf("crdt: position %d outside [0,%d)", pos, s.visible)
	}
	seen := -1
	for i := s.nodes[0].next; i != -1; i = s.nodes[i].next {
		if s.nodes[i].deleted {
			continue
		}
		seen++
		if seen == pos {
			return i, nil
		}
	}
	return -1, fmt.Errorf("crdt: position %d not reached (corrupt visible count)", pos)
}

// Insert applies a local insertion of ch at visible position pos (0 =
// front, Len() = back) and returns the op to broadcast.
func (s *Sequence) Insert(pos int, ch rune) (Op, error) {
	if pos < 0 || pos > s.visible {
		return Op{}, fmt.Errorf("crdt: insert position %d outside [0,%d]", pos, s.visible)
	}
	after := ID{} // head
	if pos > 0 {
		i, err := s.visibleAt(pos - 1)
		if err != nil {
			return Op{}, err
		}
		after = s.nodes[i].id
	}
	op := Op{
		Kind:  OpSeqInsert,
		Site:  s.site,
		Seq:   s.opSeq + 1,
		ID:    ID{N: s.clk.Tick(), Site: s.site},
		After: after,
		Ch:    ch,
	}
	s.applyOp(op)
	s.opSeq++
	s.vv.Tick(s.site)
	return op, nil
}

// Delete applies a local deletion of the element at visible position pos
// and returns the op to broadcast.
func (s *Sequence) Delete(pos int) (Op, error) {
	i, err := s.visibleAt(pos)
	if err != nil {
		return Op{}, err
	}
	op := Op{
		Kind: OpSeqDelete,
		Site: s.site,
		Seq:  s.opSeq + 1,
		ID:   s.nodes[i].id,
	}
	s.applyOp(op)
	s.opSeq++
	s.vv.Tick(s.site)
	return op, nil
}

// Apply integrates a remote op. Delivery may duplicate and reorder: ops
// arriving early (FIFO gap, or a reference/target not yet inserted) are
// held back, duplicates are dropped.
func (s *Sequence) Apply(op Op) error {
	switch op.Kind {
	case OpSeqInsert, OpSeqDelete:
	default:
		return fmt.Errorf("crdt: sequence cannot apply %v op", op.Kind)
	}
	s.held = integrate(s.vv, s.held, op, s.ready, s.applyOp)
	return nil
}

func (s *Sequence) ready(op Op) bool {
	if op.Kind == OpSeqDelete {
		_, ok := s.index[op.ID]
		return ok
	}
	if op.After.IsZero() {
		return true
	}
	_, ok := s.index[op.After]
	return ok
}

func (s *Sequence) applyOp(op Op) {
	if op.Kind == OpSeqDelete {
		i := s.index[op.ID]
		if !s.nodes[i].deleted {
			s.nodes[i].deleted = true
			s.visible--
		}
		return
	}
	s.insertNode(op.ID, op.After, op.Ch)
}

// insertNode integrates one element by the RGA rule. The caller guarantees
// the reference element exists (ready, or state-merge node order).
func (s *Sequence) insertNode(id, after ID, ch rune) {
	if _, ok := s.index[id]; ok {
		return
	}
	at := int32(0)
	if !after.IsZero() {
		at = s.index[after]
	}
	for next := s.nodes[at].next; next != -1 && id.Less(s.nodes[next].id); next = s.nodes[at].next {
		at = next
	}
	n := int32(len(s.nodes))
	s.nodes = append(s.nodes, seqNode{id: id, after: after, ch: ch, next: s.nodes[at].next})
	s.nodes[at].next = n
	s.index[id] = n
	s.visible++
	s.clk.Observe(id.N)
}

// SeqNode is one element of a serialized Sequence state.
type SeqNode struct {
	ID      ID   `json:"id"`
	After   ID   `json:"after"`
	Ch      rune `json:"ch"`
	Deleted bool `json:"del,omitempty"`
}

// SeqState is the full serializable state of a Sequence: every element
// (live and tombstoned) in document order plus the applied-op vector.
// Elements always appear after their insert reference, so a receiver
// integrates them in one forward pass.
type SeqState struct {
	Nodes []SeqNode `json:"nodes"`
	VV    vclock.VC `json:"vv"`
}

// State snapshots the replica for anti-entropy.
func (s *Sequence) State() *SeqState {
	st := &SeqState{Nodes: make([]SeqNode, 0, len(s.nodes)-1), VV: s.vv.Clone()}
	for i := s.nodes[0].next; i != -1; i = s.nodes[i].next {
		n := s.nodes[i]
		st.Nodes = append(st.Nodes, SeqNode{ID: n.id, After: n.after, Ch: n.ch, Deleted: n.deleted})
	}
	return st
}

// MergeState joins a peer snapshot into s: unseen elements integrate by
// the same RGA rule the op path uses, tombstones union, and the vectors
// merge, after which held ops the state subsumed drain as duplicates. The
// join is idempotent, commutative and associative. A state whose element
// references an insert reference absent from both the state prefix and
// this replica is corrupt and rejected.
func (s *Sequence) MergeState(st *SeqState) error {
	for _, n := range st.Nodes {
		i, ok := s.index[n.ID]
		if !ok {
			if !n.After.IsZero() {
				if _, ok := s.index[n.After]; !ok {
					return fmt.Errorf("crdt: state element %v references unknown element %v", n.ID, n.After)
				}
			}
			s.insertNode(n.ID, n.After, n.Ch)
			i = s.index[n.ID]
		}
		if n.Deleted && !s.nodes[i].deleted {
			s.nodes[i].deleted = true
			s.visible--
		}
	}
	s.vv.Merge(st.VV)
	s.held = drainHeld(s.vv, s.held, s.ready, s.applyOp)
	return nil
}
