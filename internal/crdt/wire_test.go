package crdt

import (
	"reflect"
	"testing"

	"repro/internal/fabric"
)

func roundTrip(t *testing.T, codec fabric.PayloadCodec, msg any) any {
	t.Helper()
	data, err := codec.Encode(msg)
	if err != nil {
		t.Fatalf("encode %T: %v", msg, err)
	}
	out, err := codec.Decode(data)
	if err != nil {
		t.Fatalf("decode %T: %v", msg, err)
	}
	return out
}

func sampleStates(t *testing.T) (*SeqState, *SetState, *CtrState) {
	t.Helper()
	seq := NewSequence("a")
	for i, ch := range "state" {
		if _, err := seq.Insert(i, ch); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := seq.Delete(1); err != nil {
		t.Fatal(err)
	}
	set := NewSet("b")
	set.Add("x")
	set.Add("y")
	set.Remove("x")
	ctr := NewCounter("c")
	ctr.Add(41)
	ctr.Add(-4)
	return seq.State(), set.State(), ctr.State()
}

func TestWireRoundTripJSONAndBinary(t *testing.T) {
	jsonCodec := NewWireCodec()
	binCodec := fabric.NewBinaryCodec(NewWireCodec())
	seqSt, setSt, ctrSt := sampleStates(t)
	msgs := []any{
		&MsgOp{Doc: "d1", Op: Op{Kind: OpSeqInsert, Site: "a", Seq: 3, ID: ID{N: 7, Site: "a"}, After: ID{N: 2, Site: "b"}, Ch: 'é'}},
		&MsgOp{Doc: "d1", Op: Op{Kind: OpSetRemove, Site: "b", Seq: 9, Elem: "doc", Dots: []ID{{N: 1, Site: "a"}, {N: 4, Site: "b"}}}},
		&MsgOp{Op: Op{Kind: OpCtrAdd, Site: "c", Seq: 1, Delta: -77}},
		&MsgState{Doc: "d2", Seq: seqSt},
		&MsgState{Doc: "d2", Set: setSt},
		&MsgState{Doc: "d2", Ctr: ctrSt},
	}
	for _, msg := range msgs {
		for name, codec := range map[string]fabric.PayloadCodec{"json": jsonCodec, "binary": binCodec} {
			out := roundTrip(t, codec, msg)
			if !reflect.DeepEqual(out, msg) {
				t.Errorf("%s round trip of %T changed the message:\n got %+v\nwant %+v", name, msg, out, msg)
			}
		}
	}
}

func TestWireBinaryDeterministicBytes(t *testing.T) {
	// Equal states must encode to identical bytes regardless of the map
	// insertion history — chaos invariants and the fuzzers compare
	// encodings directly.
	binCodec := fabric.NewBinaryCodec(NewWireCodec())
	a, b := NewSet("s1"), NewSet("s2")
	opX := a.Add("x")
	opY := a.Add("y")
	// b learns the same ops in the opposite order (held, then drained).
	if err := b.Apply(opY); err != nil {
		t.Fatal(err)
	}
	if err := b.Apply(opX); err != nil {
		t.Fatal(err)
	}
	ea, err := binCodec.Encode(&MsgState{Doc: "d", Set: a.State()})
	if err != nil {
		t.Fatal(err)
	}
	eb, err := binCodec.Encode(&MsgState{Doc: "d", Set: b.State()})
	if err != nil {
		t.Fatal(err)
	}
	if string(ea) != string(eb) {
		t.Fatalf("equal states encoded differently:\n%x\n%x", ea, eb)
	}
}

func TestMsgStateRejectsEmptyAndTrailing(t *testing.T) {
	if _, err := (MsgState{Doc: "d"}).AppendBinary(nil); err == nil {
		t.Fatal("empty state message encoded")
	}
	var m MsgOp
	body, err := MsgOp{Doc: "d", Op: Op{Kind: OpCtrAdd, Site: "a", Seq: 1, Delta: 5}}.AppendBinary(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.ParseBinary(append(body, 0xff)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

func TestDocKey(t *testing.T) {
	if (MsgOp{Doc: "d7"}).DocKey() != "d7" || (MsgState{Doc: "d8"}).DocKey() != "d8" {
		t.Fatal("DocKey does not surface the doc field")
	}
}
