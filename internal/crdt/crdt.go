// Package crdt implements conflict-free replicated data types for
// coordination-free document convergence: an RGA-style replicated sequence
// for text (Sequence), an observed-remove set (Set), and a PN-counter
// (Counter). Where the OT path (package ot) routes every edit through a
// central integration server, a CRDT replica applies local edits
// immediately, broadcasts the operation to its peers, and converges
// without any sequencer — the trade the source paper could only argue
// qualitatively (transaction walls vs cooperative flow) and that the
// bench shootout quantifies.
//
// Every type supports two replication styles:
//
//   - Op-based: each local mutation returns an Op; peers feed received ops
//     to Apply. Delivery may duplicate and reorder arbitrarily — a
//     hold-back queue gates each op on per-site FIFO order (dense Seq,
//     tracked in a vclock.VC) and on the presence of its dependencies, and
//     duplicates are dropped by the same vector.
//   - State-based: State snapshots a replica; MergeState joins a peer's
//     snapshot (anti-entropy after loss or partition). The join is
//     idempotent, commutative and associative, and the op and state paths
//     compose: merging a state advances the version vector, so ops the
//     state already covers are recognised as duplicates.
//
// The property tests sweep seeded random permutations across replicas to
// verify convergence and the semilattice laws; the fuzzers extend that to
// arbitrary interleavings and hostile wire bytes.
package crdt

import (
	"fmt"

	"repro/internal/vclock"
)

// ID identifies one CRDT event as a (counter, site) pair. For sequence
// elements the counter is the originating replica's Lamport time — the
// (N, Site) total order is the RGA integration tiebreak — while set dots
// use the per-site operation counter; both are unique per site. The zero
// ID names the sequence head sentinel.
type ID struct {
	N    uint64 `json:"n"`
	Site string `json:"s,omitempty"`
}

// IsZero reports whether the ID is the zero value (the sequence head).
func (a ID) IsZero() bool { return a.N == 0 && a.Site == "" }

// Less orders IDs by (N, Site). RGA integration walks past successors
// whose ID is greater than the new element's, so causally-later and
// tie-broken-later elements keep their place ahead of it.
func (a ID) Less(b ID) bool {
	if a.N != b.N {
		return a.N < b.N
	}
	return a.Site < b.Site
}

// OpKind discriminates the operation types carried by Op.
type OpKind uint8

// Operation kinds. Sequence ops target a Sequence, set ops a Set, counter
// ops a Counter; Apply rejects ops of the wrong kind.
const (
	OpSeqInsert OpKind = iota + 1
	OpSeqDelete
	OpSetAdd
	OpSetRemove
	OpCtrAdd
)

// String returns a short human-readable name for the kind.
func (k OpKind) String() string {
	switch k {
	case OpSeqInsert:
		return "seq-insert"
	case OpSeqDelete:
		return "seq-delete"
	case OpSetAdd:
		return "set-add"
	case OpSetRemove:
		return "set-remove"
	case OpCtrAdd:
		return "ctr-add"
	default:
		return fmt.Sprintf("OpKind(%d)", uint8(k))
	}
}

// Op is one replicated operation. Site and Seq form the per-site FIFO
// header every CRDT uses for hold-back gating (Seq is dense per site); the
// remaining fields are kind-specific payload.
type Op struct {
	Kind  OpKind `json:"k"`
	Site  string `json:"site"`
	Seq   uint64 `json:"seq"`
	ID    ID     `json:"id"`              // insert: new element; delete: target; add: the new dot
	After ID     `json:"after"`           // insert: reference element (zero = head)
	Ch    rune   `json:"ch,omitempty"`    // insert payload
	Elem  string `json:"elem,omitempty"`  // set element
	Dots  []ID   `json:"dots,omitempty"`  // set remove: the add dots it observed
	Delta int64  `json:"delta,omitempty"` // counter increment (may be negative)
}

// integrate runs the shared hold-back protocol: deliver op if its per-site
// FIFO turn has come and ready reports its dependencies present, otherwise
// queue it; then drain the queue until a full pass makes no progress.
// Duplicates (Seq at or below the applied vector) are dropped, including
// retransmissions of ops already held. apply must not re-enter integrate.
func integrate(vv vclock.VC, held []Op, op Op, ready func(Op) bool, apply func(Op)) []Op {
	switch {
	case op.Seq <= vv.Get(op.Site):
		return held // duplicate of an applied op
	case op.Seq == vv.Get(op.Site)+1 && ready(op):
		apply(op)
		vv.Tick(op.Site)
	default:
		for _, h := range held {
			if h.Site == op.Site && h.Seq == op.Seq {
				return held // retransmission of a held op
			}
		}
		return append(held, op)
	}
	return drainHeld(vv, held, ready, apply)
}

// drainHeld re-scans the hold-back queue after the applied vector advanced
// (an op was applied, or a state merge subsumed some ops), applying every
// op whose turn has come and dropping ops the vector now covers.
func drainHeld(vv vclock.VC, held []Op, ready func(Op) bool, apply func(Op)) []Op {
	for {
		progress := false
		kept := held[:0]
		for _, h := range held {
			switch {
			case h.Seq <= vv.Get(h.Site):
				progress = true // subsumed while held
			case h.Seq == vv.Get(h.Site)+1 && ready(h):
				apply(h)
				vv.Tick(h.Site)
				progress = true
			default:
				kept = append(kept, h)
			}
		}
		held = kept
		if !progress || len(held) == 0 {
			return held
		}
	}
}
