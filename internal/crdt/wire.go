package crdt

import "repro/internal/fabric"

// Wire type tags for byte-oriented transports.
const (
	tagOp    = "crdt/op"
	tagState = "crdt/state"
)

// MsgOp carries one CRDT operation for a document. CRDT docs need no
// sequencer, so these ride the fabric as plain multicast (group broadcast
// bodies, or session items); Doc names the document so shared endpoints
// can demultiplex.
type MsgOp struct {
	Doc string `json:"doc,omitempty"`
	Op  Op     `json:"op"`
}

// DocKey implements session.DocKeyed, letting the session layer demux CRDT
// traffic by document without importing this package.
func (m MsgOp) DocKey() string { return m.Doc }

// MsgState carries a full replica snapshot for anti-entropy (gossip after
// loss or partition). Exactly one of Seq/Set/Ctr is set.
type MsgState struct {
	Doc string    `json:"doc,omitempty"`
	Seq *SeqState `json:"seq,omitempty"`
	Set *SetState `json:"set,omitempty"`
	Ctr *CtrState `json:"ctr,omitempty"`
}

// DocKey implements session.DocKeyed.
func (m MsgState) DocKey() string { return m.Doc }

// RegisterWire registers the CRDT wire messages with a fabric codec, so
// replicas can converse over any fabric substrate (and over the binary
// frame codec — both messages carry hand-rolled binary bodies).
func RegisterWire(c *fabric.Codec) {
	c.Register(tagOp, MsgOp{})
	c.Register(tagState, MsgState{})
}

// NewWireCodec returns a codec pre-loaded with the CRDT wire messages.
func NewWireCodec() *fabric.Codec {
	c := fabric.NewCodec()
	RegisterWire(c)
	return c
}
