package crdt

import (
	"reflect"
	"testing"

	"repro/internal/fabric"
)

// byteScript doles out fuzz bytes as small typed values; exhausted input
// yields zeros so every prefix is a valid script.
type byteScript struct {
	data []byte
	at   int
}

func (s *byteScript) byte() byte {
	if s.at >= len(s.data) {
		return 0
	}
	b := s.data[s.at]
	s.at++
	return b
}

func (s *byteScript) u64() uint64 {
	var v uint64
	for i := 0; i < 4; i++ {
		v = v<<8 | uint64(s.byte())
	}
	return v
}

func (s *byteScript) str() string {
	n := int(s.byte() % 8)
	out := make([]byte, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, s.byte())
	}
	return string(out)
}

func (s *byteScript) done() bool { return s.at >= len(s.data) }

// FuzzOpWireRoundTrip builds an arbitrary op message from the input bytes
// and requires the binary codec to reproduce it exactly.
func FuzzOpWireRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 'a', 3, 0, 0, 0, 7, 'x', 'y', 255, 128, 9})
	f.Add([]byte{4, 1, 'b', 0, 0, 0, 1, 'e', 'l', 'e', 'm', 2, 9, 'a', 8, 'b'})
	codec := fabric.NewBinaryCodec(NewWireCodec())
	f.Fuzz(func(t *testing.T, data []byte) {
		s := &byteScript{data: data}
		msg := &MsgOp{
			Doc: s.str(),
			Op: Op{
				Kind:  OpKind(s.byte()),
				Site:  s.str(),
				Seq:   s.u64(),
				ID:    ID{N: s.u64(), Site: s.str()},
				After: ID{N: s.u64(), Site: s.str()},
				Ch:    rune(uint32(s.u64())),
				Elem:  s.str(),
				Delta: int64(s.u64()) - int64(s.u64()),
			},
		}
		for n := int(s.byte() % 5); n > 0; n-- {
			msg.Op.Dots = append(msg.Op.Dots, ID{N: s.u64(), Site: s.str()})
		}
		enc, err := codec.Encode(msg)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		out, err := codec.Decode(enc)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !reflect.DeepEqual(out, msg) {
			t.Fatalf("round trip changed message:\n got %+v\nwant %+v", out, msg)
		}
	})
}

// FuzzWireDecode feeds arbitrary bytes to the binary body parsers: they
// must never panic, and anything they accept must re-encode to a body that
// parses back to the same message (parse∘encode is the identity on parsed
// messages).
func FuzzWireDecode(f *testing.F) {
	seedOp, _ := MsgOp{Doc: "d", Op: Op{Kind: OpSeqInsert, Site: "a", Seq: 1, ID: ID{N: 1, Site: "a"}, Ch: 'x'}}.AppendBinary(nil)
	f.Add(true, seedOp)
	seq := NewSequence("a")
	if _, err := seq.Insert(0, 'q'); err != nil {
		f.Fatal(err)
	}
	seedState, _ := MsgState{Doc: "d", Seq: seq.State()}.AppendBinary(nil)
	f.Add(false, seedState)
	f.Add(false, []byte{0, 1})
	f.Fuzz(func(t *testing.T, asOp bool, data []byte) {
		if asOp {
			var m MsgOp
			if err := m.ParseBinary(data); err != nil {
				return
			}
			body, err := m.AppendBinary(nil)
			if err != nil {
				t.Fatalf("re-encode parsed op: %v", err)
			}
			var m2 MsgOp
			if err := m2.ParseBinary(body); err != nil {
				t.Fatalf("re-parse encoded op: %v", err)
			}
			if !reflect.DeepEqual(m2, m) {
				t.Fatalf("parse/encode not stable:\n got %+v\nwant %+v", m2, m)
			}
			return
		}
		var m MsgState
		if err := m.ParseBinary(data); err != nil {
			return
		}
		body, err := m.AppendBinary(nil)
		if err != nil {
			t.Fatalf("re-encode parsed state: %v", err)
		}
		var m2 MsgState
		if err := m2.ParseBinary(body); err != nil {
			t.Fatalf("re-parse encoded state: %v", err)
		}
		if !reflect.DeepEqual(m2, m) {
			t.Fatalf("parse/encode not stable:\n got %+v\nwant %+v", m2, m)
		}
	})
}

// FuzzMergeConvergence drives three replicas of each CRDT with an
// arbitrary op script and two adversarial delivery interleavings (in
// order, reversed, plus duplicates), then cross-merges snapshots; every
// replica must converge to identical state.
func FuzzMergeConvergence(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 250, 251, 252, 9, 9, 9})
	f.Add([]byte{7, 130, 14, 200, 3, 77, 77, 0, 255, 16, 32, 64, 128, 1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		s := &byteScript{data: data}
		seqs := [3]*Sequence{NewSequence("a"), NewSequence("b"), NewSequence("c")}
		sets := [3]*Set{NewSet("a"), NewSet("b"), NewSet("c")}
		ctrs := [3]*Counter{NewCounter("a"), NewCounter("b"), NewCounter("c")}
		universe := []string{"u", "v", "w"}
		type origin struct {
			op   Op
			site int
		}
		var log []origin
		for i := 0; i < 64 && !s.done(); i++ {
			site := int(s.byte()) % 3
			arg := int(s.byte())
			switch s.byte() % 5 {
			case 0:
				op, err := seqs[site].Insert(arg%(seqs[site].Len()+1), rune('a'+arg%26))
				if err != nil {
					t.Fatal(err)
				}
				log = append(log, origin{op, site})
			case 1:
				if seqs[site].Len() > 0 {
					op, err := seqs[site].Delete(arg % seqs[site].Len())
					if err != nil {
						t.Fatal(err)
					}
					log = append(log, origin{op, site})
				}
			case 2:
				log = append(log, origin{sets[site].Add(universe[arg%3]), site})
			case 3:
				log = append(log, origin{sets[site].Remove(universe[arg%3]), site})
			case 4:
				log = append(log, origin{ctrs[site].Add(int64(arg) - 128), site})
			}
		}
		apply := func(to int, op Op) {
			var err error
			switch op.Kind {
			case OpSeqInsert, OpSeqDelete:
				err = seqs[to].Apply(op)
			case OpSetAdd, OpSetRemove:
				err = sets[to].Apply(op)
			case OpCtrAdd:
				err = ctrs[to].Apply(op)
			}
			if err != nil {
				t.Fatal(err)
			}
		}
		// Replica 1 hears the log forward, replica 2 reversed; the ops a
		// replica issued itself arrive again as duplicates.
		for _, o := range log {
			apply(1, o.op)
		}
		for i := len(log) - 1; i >= 0; i-- {
			apply(2, log[i].op)
		}
		// Replica 0 receives nothing op-wise: it converges purely by state
		// merge from the other two.
		if err := seqs[0].MergeState(seqs[1].State()); err != nil {
			t.Fatal(err)
		}
		if err := seqs[0].MergeState(seqs[2].State()); err != nil {
			t.Fatal(err)
		}
		sets[0].MergeState(sets[1].State())
		sets[0].MergeState(sets[2].State())
		ctrs[0].MergeState(ctrs[1].State())
		ctrs[0].MergeState(ctrs[2].State())
		// And the op-fed replicas cross-merge to pick up replica 0's edits.
		for _, i := range []int{1, 2} {
			if err := seqs[i].MergeState(seqs[0].State()); err != nil {
				t.Fatal(err)
			}
			sets[i].MergeState(sets[0].State())
			ctrs[i].MergeState(ctrs[0].State())
		}
		for i := 1; i < 3; i++ {
			if seqs[i].Text() != seqs[0].Text() {
				t.Fatalf("sequence replica %d diverged: %q vs %q", i, seqs[i].Text(), seqs[0].Text())
			}
			if !reflect.DeepEqual(sets[i].Elements(), sets[0].Elements()) {
				t.Fatalf("set replica %d diverged: %v vs %v", i, sets[i].Elements(), sets[0].Elements())
			}
			if ctrs[i].Value() != ctrs[0].Value() {
				t.Fatalf("counter replica %d diverged: %d vs %d", i, ctrs[i].Value(), ctrs[0].Value())
			}
		}
	})
}
