package crdt

import (
	"fmt"

	"repro/internal/vclock"
)

// Counter is a PN-counter: per-site monotone totals of increments (P) and
// decrements (N), with Value the difference of their sums. Per-site FIFO
// gating makes a site's running totals deterministic, so the state join is
// a pointwise maximum.
type Counter struct {
	site  string
	opSeq uint64
	vv    vclock.VC
	pos   map[string]uint64
	neg   map[string]uint64
	held  []Op
}

// NewCounter returns a zero replica owned by site.
func NewCounter(site string) *Counter {
	return &Counter{
		site: site,
		vv:   vclock.New(),
		pos:  make(map[string]uint64),
		neg:  make(map[string]uint64),
	}
}

// Site returns the replica's site identifier.
func (c *Counter) Site() string { return c.site }

// Held returns the number of remote ops waiting on FIFO order.
func (c *Counter) Held() int { return len(c.held) }

// VV returns a copy of the applied-operation vector.
func (c *Counter) VV() vclock.VC { return c.vv.Clone() }

// Value returns the counter value: total increments minus total decrements.
func (c *Counter) Value() int64 {
	var p, n uint64
	for _, v := range c.pos {
		p += v
	}
	for _, v := range c.neg {
		n += v
	}
	return int64(p) - int64(n)
}

// Add applies a local increment (delta may be negative) and returns the op
// to broadcast.
func (c *Counter) Add(delta int64) Op {
	c.opSeq++
	op := Op{Kind: OpCtrAdd, Site: c.site, Seq: c.opSeq, Delta: delta}
	c.applyOp(op)
	c.vv.Tick(c.site)
	return op
}

// Apply integrates a remote op; duplicates are dropped, FIFO gaps held.
func (c *Counter) Apply(op Op) error {
	if op.Kind != OpCtrAdd {
		return fmt.Errorf("crdt: counter cannot apply %v op", op.Kind)
	}
	c.held = integrate(c.vv, c.held, op, func(Op) bool { return true }, c.applyOp)
	return nil
}

func (c *Counter) applyOp(op Op) {
	if op.Delta >= 0 {
		c.pos[op.Site] += uint64(op.Delta)
	} else {
		// uint64 of the two's-complement negation is the correct magnitude
		// even for math.MinInt64.
		c.neg[op.Site] += uint64(-op.Delta)
	}
}

// CtrState is the full serializable state of a Counter.
type CtrState struct {
	Pos map[string]uint64 `json:"pos"`
	Neg map[string]uint64 `json:"neg"`
	VV  vclock.VC         `json:"vv"`
}

// State snapshots the replica for anti-entropy.
func (c *Counter) State() *CtrState {
	st := &CtrState{
		Pos: make(map[string]uint64, len(c.pos)),
		Neg: make(map[string]uint64, len(c.neg)),
		VV:  c.vv.Clone(),
	}
	for site, v := range c.pos {
		st.Pos[site] = v
	}
	for site, v := range c.neg {
		st.Neg[site] = v
	}
	return st
}

// MergeState joins a peer snapshot: pointwise maxima of the monotone
// per-site totals, vector merge, held-op drain. Idempotent, commutative,
// associative.
func (c *Counter) MergeState(st *CtrState) {
	for site, v := range st.Pos {
		if v > c.pos[site] {
			c.pos[site] = v
		}
	}
	for site, v := range st.Neg {
		if v > c.neg[site] {
			c.neg[site] = v
		}
	}
	c.vv.Merge(st.VV)
	c.held = drainHeld(c.vv, c.held, func(Op) bool { return true }, c.applyOp)
}
