package txn

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestStoreBasics(t *testing.T) {
	s := NewStore()
	if _, ok := s.Get("x"); ok {
		t.Fatal("empty store should miss")
	}
	s.Set("x", "1")
	if v, ok := s.Get("x"); !ok || v != "1" {
		t.Fatalf("Get = %q %v", v, ok)
	}
	if s.Version("x") != 1 {
		t.Errorf("version = %d", s.Version("x"))
	}
	s.Set("x", "2")
	if s.Version("x") != 2 {
		t.Errorf("version after rewrite = %d", s.Version("x"))
	}
	s.Delete("x")
	if _, ok := s.Get("x"); ok {
		t.Fatal("deleted key present")
	}
	if s.Version("x") != 3 {
		t.Errorf("version after delete = %d", s.Version("x"))
	}
	s.Set("a", "1")
	s.Set("b", "2")
	keys := s.Keys()
	if len(keys) != 2 || keys[0] != "a" || keys[1] != "b" {
		t.Errorf("Keys = %v", keys)
	}
	snap := s.Snapshot()
	s.Set("a", "changed")
	if snap["a"] != "1" {
		t.Error("snapshot not independent")
	}
}

func TestKeyPath(t *testing.T) {
	tests := []struct {
		in   string
		want string
	}{
		{"doc/s1/p2", "doc s1 p2"},
		{"plain", "plain"},
		{"a//b", "a b"},
		{"/lead", "lead"},
	}
	for _, tt := range tests {
		got := strings.Join(keyPath(tt.in), " ")
		if got != tt.want {
			t.Errorf("keyPath(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestSerialCommit(t *testing.T) {
	s := NewStore()
	m := NewManager(s, 0)
	tx := m.Begin("alice", 0)
	if err := tx.Write("doc/s1", "hello", 0); err != nil {
		t.Fatal(err)
	}
	v, err := tx.Read("doc/s1", 0)
	if err != nil || v != "hello" {
		t.Fatalf("read own write = %q, %v", v, err)
	}
	if err := tx.Commit(time.Second); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Get("doc/s1"); v != "hello" {
		t.Errorf("store after commit = %q", v)
	}
	if tx.State() != TxnCommitted {
		t.Errorf("state = %v", tx.State())
	}
	if err := tx.Write("doc/s1", "late", time.Second); !errors.Is(err, ErrTxnDone) {
		t.Errorf("write after commit = %v", err)
	}
}

func TestSerialAbortUndo(t *testing.T) {
	s := NewStore()
	s.Set("k", "orig")
	m := NewManager(s, 0)
	tx := m.Begin("alice", 0)
	tx.Write("k", "dirty1", 0)
	tx.Write("k", "dirty2", 0)
	tx.Write("fresh", "new", 0)
	if err := tx.Abort(0); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Get("k"); v != "orig" {
		t.Errorf("k after abort = %q, want orig", v)
	}
	if _, ok := s.Get("fresh"); ok {
		t.Error("fresh key should be gone after abort")
	}
}

func TestSerialWallsBlockAndResume(t *testing.T) {
	s := NewStore()
	m := NewManager(s, 0)
	t1 := m.Begin("alice", 0)
	t2 := m.Begin("bob", 0)
	if err := t1.Write("doc/s1", "a-version", 0); err != nil {
		t.Fatal(err)
	}
	// Bob cannot even read while Alice writes: the Figure 2a wall.
	var resumedAt time.Duration
	t2.OnUnblock = func(now time.Duration) { resumedAt = now }
	_, err := t2.Read("doc/s1", time.Second)
	if !errors.Is(err, ErrWouldBlock) {
		t.Fatalf("read during write = %v, want ErrWouldBlock", err)
	}
	if t2.State() != TxnBlocked {
		t.Fatalf("t2 state = %v", t2.State())
	}
	if err := t1.Commit(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	if t2.State() != TxnActive {
		t.Fatalf("t2 should resume after t1 commit, state = %v", t2.State())
	}
	if resumedAt != 3*time.Second {
		t.Errorf("resumedAt = %v", resumedAt)
	}
	st := m.Stats()
	if st.Blocks != 1 || st.TotalBlockTime != 2*time.Second {
		t.Errorf("stats = %+v", st)
	}
	// Bob can now read the committed value.
	v, err := t2.Read("doc/s1", 3*time.Second)
	if err != nil || v != "a-version" {
		t.Errorf("post-wall read = %q, %v", v, err)
	}
}

func TestSerialSharedReadersCoexist(t *testing.T) {
	s := NewStore()
	s.Set("k", "v")
	m := NewManager(s, 0)
	t1 := m.Begin("a", 0)
	t2 := m.Begin("b", 0)
	if _, err := t1.Read("k", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := t2.Read("k", 0); err != nil {
		t.Fatal(err)
	}
}

func TestSerialUpgrade(t *testing.T) {
	s := NewStore()
	s.Set("k", "v")
	m := NewManager(s, 0)
	tx := m.Begin("a", 0)
	if _, err := tx.Read("k", 0); err != nil {
		t.Fatal(err)
	}
	if err := tx.Write("k", "v2", 0); err != nil {
		t.Fatalf("upgrade: %v", err)
	}
	tx.Commit(0)
	if v, _ := s.Get("k"); v != "v2" {
		t.Errorf("after upgrade commit = %q", v)
	}
}

func TestDeadlockTimeoutAbort(t *testing.T) {
	s := NewStore()
	s.Set("x", "0")
	s.Set("y", "0")
	m := NewManager(s, 5*time.Second)
	t1 := m.Begin("a", 0)
	t2 := m.Begin("b", 0)
	t1.Write("x", "1", 0)
	t2.Write("y", "1", 0)
	// Cross-block: classic deadlock.
	if err := t1.Write("y", "1", time.Second); !errors.Is(err, ErrWouldBlock) {
		t.Fatal("t1 should block on y")
	}
	if err := t2.Write("x", "1", time.Second); !errors.Is(err, ErrWouldBlock) {
		t.Fatal("t2 should block on x")
	}
	aborted := m.CheckTimeouts(3 * time.Second)
	if len(aborted) != 0 {
		t.Fatalf("aborted too early: %d", len(aborted))
	}
	aborted = m.CheckTimeouts(10 * time.Second)
	if len(aborted) != 2 {
		t.Fatalf("aborted = %d, want both deadlocked txns", len(aborted))
	}
	if m.Stats().TimeoutAborts != 2 {
		t.Errorf("TimeoutAborts = %d", m.Stats().TimeoutAborts)
	}
	if v, _ := s.Get("x"); v != "0" {
		t.Errorf("x = %q after deadlock abort, want 0", v)
	}
}

func TestBlockedAbortCancelsWaiter(t *testing.T) {
	s := NewStore()
	m := NewManager(s, 0)
	t1 := m.Begin("a", 0)
	t2 := m.Begin("b", 0)
	t3 := m.Begin("c", 0)
	t1.Write("k", "1", 0)
	if err := t2.Write("k", "2", 0); !errors.Is(err, ErrWouldBlock) {
		t.Fatal("t2 should block")
	}
	if err := t3.Write("k", "3", 0); !errors.Is(err, ErrWouldBlock) {
		t.Fatal("t3 should block")
	}
	t2.Abort(0) // cancels its queued request
	t1.Commit(0)
	// t3 (not t2) should now hold the lock and have applied its write.
	if v, _ := s.Get("k"); v != "3" {
		t.Errorf("k = %q, want 3 (t3's write after t2 cancelled)", v)
	}
}

// --- transaction groups ---

func sectionOf(key string) string {
	// key convention: "<owner>/<rest>"
	if i := strings.IndexByte(key, '/'); i > 0 {
		return key[:i]
	}
	return key
}

func TestGroupImmediateVisibility(t *testing.T) {
	parent := NewStore()
	parent.Set("alice/draft", "v0")
	var events []GroupEvent
	g := NewGroup("paper", parent, []Rule{RuleReadAll(false), RuleWriteNotify()}, func(e GroupEvent) {
		events = append(events, e)
	})
	g.Join("alice")
	g.Join("bob")
	if err := g.Write("alice", "alice/draft", "v1", 0); err != nil {
		t.Fatal(err)
	}
	// Bob sees Alice's uncommitted write immediately: no walls.
	v, err := g.Read("bob", "alice/draft", time.Millisecond)
	if err != nil || v != "v1" {
		t.Fatalf("bob read = %q, %v", v, err)
	}
	// And Bob was notified of the write (information flow).
	if len(events) != 1 || events[0].To != "bob" || events[0].User != "alice" {
		t.Fatalf("events = %+v", events)
	}
	// Parent untouched until commit.
	if v, _ := parent.Get("alice/draft"); v != "v0" {
		t.Errorf("parent before commit = %q", v)
	}
	n := g.Commit(time.Second)
	if n != 1 {
		t.Errorf("commit wrote %d keys", n)
	}
	if v, _ := parent.Get("alice/draft"); v != "v1" {
		t.Errorf("parent after commit = %q", v)
	}
}

func TestGroupOwnSectionPolicy(t *testing.T) {
	parent := NewStore()
	g := NewGroup("paper", parent, []Rule{RuleReadAll(false), RuleOwnSection(sectionOf)}, nil)
	g.Join("alice")
	g.Join("bob")
	if err := g.Write("alice", "alice/s1", "mine", 0); err != nil {
		t.Fatalf("own-section write: %v", err)
	}
	err := g.Write("bob", "alice/s1", "intrusion", 0)
	if !errors.Is(err, ErrDenied) {
		t.Fatalf("cross-section write = %v, want denied", err)
	}
	st := g.Stats()
	if st.Denied != 1 || st.Allowed != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestGroupPolicyTailoring(t *testing.T) {
	parent := NewStore()
	g := NewGroup("doc", parent, []Rule{RuleReadAll(false), RuleOwnSection(sectionOf)}, nil)
	g.Join("alice")
	g.Join("bob")
	if err := g.Write("bob", "alice/s1", "x", 0); !errors.Is(err, ErrDenied) {
		t.Fatal("should deny before tailoring")
	}
	// Mid-collaboration the group relaxes to brainstorm mode.
	g.SetRules([]Rule{RuleReadAll(false), RuleWriteNotify()})
	if err := g.Write("bob", "alice/s1", "x", 0); err != nil {
		t.Fatalf("after tailoring: %v", err)
	}
	// And then freezes for review.
	g.SetRules([]Rule{RuleReadAll(false), RuleDenyWrites()})
	if err := g.Write("alice", "alice/s1", "y", 0); !errors.Is(err, ErrDenied) {
		t.Fatal("review phase should deny writes")
	}
	if _, err := g.Read("bob", "alice/s1", 0); err != nil {
		t.Fatalf("review phase read: %v", err)
	}
}

func TestGroupMembership(t *testing.T) {
	g := NewGroup("g", NewStore(), []Rule{RuleReadAll(false)}, nil)
	if _, err := g.Read("stranger", "k", 0); !errors.Is(err, ErrNotMember) {
		t.Errorf("stranger read = %v", err)
	}
	g.Join("a")
	g.Join("b")
	if got := g.Members(); len(got) != 2 || got[0] != "a" {
		t.Errorf("Members = %v", got)
	}
	g.Leave("a")
	if got := g.Members(); len(got) != 1 || got[0] != "b" {
		t.Errorf("Members after leave = %v", got)
	}
}

func TestGroupDefaultDeny(t *testing.T) {
	g := NewGroup("g", NewStore(), nil, nil)
	g.Join("a")
	if err := g.Write("a", "k", "v", 0); !errors.Is(err, ErrDenied) {
		t.Errorf("no rules should default-deny, got %v", err)
	}
}

func TestGroupLastWriter(t *testing.T) {
	g := NewGroup("g", NewStore(), []Rule{RuleWriteNotify()}, nil)
	g.Join("a")
	g.Join("b")
	g.Write("a", "k", "1", 0)
	g.Write("b", "k", "2", 0)
	if g.LastWriter("k") != "b" {
		t.Errorf("LastWriter = %q", g.LastWriter("k"))
	}
}

func TestStateStrings(t *testing.T) {
	if TxnActive.String() != "active" || TxnBlocked.String() != "blocked" ||
		TxnCommitted.String() != "committed" || TxnAborted.String() != "aborted" {
		t.Error("TxnState names")
	}
	if AccessRead.String() != "read" || AccessWrite.String() != "write" {
		t.Error("AccessKind names")
	}
	if Allow.String() != "allow" || AllowNotify.String() != "allow+notify" || Deny.String() != "deny" || Abstain.String() != "abstain" {
		t.Error("Decision names")
	}
}

func BenchmarkSerialTxnCommit(b *testing.B) {
	s := NewStore()
	m := NewManager(s, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tx := m.Begin("u", 0)
		tx.Write("doc/s1/p1", "x", 0)
		tx.Commit(0)
	}
}

func BenchmarkGroupWrite(b *testing.B) {
	g := NewGroup("g", NewStore(), []Rule{RuleWriteNotify()}, func(GroupEvent) {})
	g.Join("a")
	g.Join("b")
	g.Join("c")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Write("a", "k", "v", 0)
	}
}

func TestSubgroupHierarchy(t *testing.T) {
	root := NewStore()
	root.Set("book/ch1", "draft-0")
	book := NewGroup("book", root, []Rule{RuleReadAll(false), RuleWriteNotify()}, nil)
	book.Join("editor")
	chapter := book.Subgroup("ch1-team", []Rule{RuleReadAll(false), RuleWriteNotify()}, nil)
	chapter.Join("ann")
	chapter.Join("ben")

	// The chapter team cooperates inside its own bubble.
	if err := chapter.Write("ann", "book/ch1", "draft-1", 0); err != nil {
		t.Fatal(err)
	}
	if v, _ := chapter.Read("ben", "book/ch1", 0); v != "draft-1" {
		t.Fatalf("ben sees %q", v)
	}
	// The book group does not see it yet...
	if v, err := book.Read("editor", "book/ch1", 0); err != nil || v != "draft-0" {
		t.Fatalf("editor sees %q, %v", v, err)
	}
	// ...until the subgroup commits into the book group's store.
	chapter.Commit(1)
	if v, _ := book.Read("editor", "book/ch1", 1); v != "draft-1" {
		t.Fatal("subgroup commit should surface in the parent group")
	}
	// And the root store only changes when the book group commits.
	if v, _ := root.Get("book/ch1"); v != "draft-0" {
		t.Fatalf("root changed early: %q", v)
	}
	book.Commit(2)
	if v, _ := root.Get("book/ch1"); v != "draft-1" {
		t.Fatalf("root after book commit: %q", v)
	}
}
