package txn

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/locks"
)

// TxnState is a transaction's lifecycle state.
type TxnState int

const (
	// TxnActive means the transaction is running.
	TxnActive TxnState = iota + 1
	// TxnBlocked means it is parked waiting for a lock.
	TxnBlocked
	// TxnCommitted means it committed.
	TxnCommitted
	// TxnAborted means it aborted (voluntarily or by timeout).
	TxnAborted
)

// String returns the state name.
func (s TxnState) String() string {
	switch s {
	case TxnActive:
		return "active"
	case TxnBlocked:
		return "blocked"
	case TxnCommitted:
		return "committed"
	case TxnAborted:
		return "aborted"
	default:
		return fmt.Sprintf("TxnState(%d)", int(s))
	}
}

// SerialStats aggregates serialisable-manager activity for experiments.
type SerialStats struct {
	Begun          int
	Committed      int
	Aborted        int
	TimeoutAborts  int
	Blocks         int
	TotalBlockTime time.Duration
}

// Manager coordinates serialisable transactions over a store: strict 2PL
// through a pessimistic lock manager, undo-on-abort, timeout-based deadlock
// resolution. All entry points take the current (virtual) time.
type Manager struct {
	store   *Store
	lm      *locks.Manager
	next    uint64
	active  map[string]*Txn // lock-principal id -> txn
	timeout time.Duration
	stats   SerialStats
}

// NewManager creates a serialisable transaction manager over store.
// blockTimeout bounds how long a transaction may wait for a lock before
// CheckTimeouts aborts it (the deadlock resolution strategy); zero disables
// timeouts.
func NewManager(store *Store, blockTimeout time.Duration) *Manager {
	m := &Manager{
		store:   store,
		active:  make(map[string]*Txn),
		timeout: blockTimeout,
	}
	m.lm = locks.NewManager(locks.Pessimistic, locks.Options{Emit: m.onLockEvent})
	return m
}

// Stats returns accumulated statistics.
func (m *Manager) Stats() SerialStats { return m.stats }

// LockStats exposes the underlying lock manager statistics.
func (m *Manager) LockStats() locks.Stats { return m.lm.Stats() }

// Txn is one serialisable transaction.
type Txn struct {
	mgr       *Manager
	id        string
	user      string
	state     TxnState
	began     time.Duration
	held      map[string]locks.Mode // lock path string -> mode held
	undo      []undoRecord
	pending   *pendingOp
	blockedAt time.Duration
	// OnUnblock, if set, is called when a parked operation is granted its
	// lock and completes. The harness uses it to resume the user's script.
	OnUnblock func(now time.Duration)
}

type pendingOp struct {
	key   string
	write bool
	value string
}

// Begin starts a transaction on behalf of user.
func (m *Manager) Begin(user string, now time.Duration) *Txn {
	m.next++
	t := &Txn{
		mgr:   m,
		id:    fmtTxnID(m.next),
		user:  user,
		state: TxnActive,
		began: now,
		held:  make(map[string]locks.Mode),
	}
	m.active[t.id] = t
	m.stats.Begun++
	return t
}

// ID returns the transaction's lock-principal identifier.
func (t *Txn) ID() string { return t.id }

// User returns the owning user.
func (t *Txn) User() string { return t.user }

// State returns the lifecycle state.
func (t *Txn) State() TxnState { return t.state }

// acquire takes a lock for the transaction, upgrading shared->exclusive as
// needed. It returns ErrWouldBlock when the request was queued.
func (t *Txn) acquire(key string, mode locks.Mode, now time.Duration) error {
	path := locks.Path(keyPath(key))
	ps := path.String()
	if have, ok := t.held[ps]; ok {
		if have == locks.Exclusive || mode == locks.Shared {
			return nil // already sufficient
		}
		// Upgrade: release shared then request exclusive. (A dedicated
		// upgrade path would avoid the window; the simulator's single
		// thread means nothing sneaks in between.)
		if err := t.mgr.lm.Release(path, t.id, now); err != nil {
			return fmt.Errorf("upgrade release: %w", err)
		}
		delete(t.held, ps)
	}
	res, err := t.mgr.lm.Acquire(path, t.id, mode, now)
	if err != nil {
		return err
	}
	if res.Granted {
		t.held[ps] = mode
		return nil
	}
	t.state = TxnBlocked
	t.blockedAt = now
	t.mgr.stats.Blocks++
	return ErrWouldBlock
}

// Read returns the value of key under a shared lock. When the lock is not
// immediately available the transaction parks and ErrWouldBlock is
// returned; the read completes on grant and OnUnblock fires.
func (t *Txn) Read(key string, now time.Duration) (string, error) {
	if t.state == TxnCommitted || t.state == TxnAborted {
		return "", ErrTxnDone
	}
	if err := t.acquire(key, locks.Shared, now); err != nil {
		if err == ErrWouldBlock {
			t.pending = &pendingOp{key: key}
		}
		return "", err
	}
	v, _ := t.mgr.store.Get(key)
	return v, nil
}

// Write sets key to value under an exclusive lock, with the same blocking
// contract as Read. The store is updated immediately (undo restores it on
// abort), which matches the strict-2PL walls model: nobody else can see the
// write because nobody else can take the lock.
func (t *Txn) Write(key, value string, now time.Duration) error {
	if t.state == TxnCommitted || t.state == TxnAborted {
		return ErrTxnDone
	}
	if err := t.acquire(key, locks.Exclusive, now); err != nil {
		if err == ErrWouldBlock {
			t.pending = &pendingOp{key: key, write: true, value: value}
		}
		return err
	}
	t.undo = append(t.undo, t.mgr.store.apply(key, value))
	return nil
}

// Commit makes the transaction's writes permanent and releases all locks.
func (t *Txn) Commit(now time.Duration) error {
	if t.state == TxnCommitted || t.state == TxnAborted {
		return ErrTxnDone
	}
	t.state = TxnCommitted
	t.undo = nil
	t.releaseAll(now)
	t.mgr.stats.Committed++
	delete(t.mgr.active, t.id)
	return nil
}

// Abort rolls back the transaction's writes and releases all locks.
func (t *Txn) Abort(now time.Duration) error {
	if t.state == TxnCommitted || t.state == TxnAborted {
		return ErrTxnDone
	}
	t.mgr.store.undo(t.undo)
	t.undo = nil
	t.state = TxnAborted
	t.releaseAll(now)
	t.mgr.stats.Aborted++
	delete(t.mgr.active, t.id)
	return nil
}

func (t *Txn) releaseAll(now time.Duration) {
	t.mgr.lm.CancelWaiters(t.id)
	for ps := range t.held {
		_ = t.mgr.lm.Release(locks.Path(keyPath(ps)), t.id, now)
	}
	t.held = make(map[string]locks.Mode)
	t.pending = nil
}

// onLockEvent resumes transactions whose queued lock requests are granted.
func (m *Manager) onLockEvent(e locks.Event) {
	if e.Type != locks.EvGranted {
		return
	}
	t, ok := m.active[e.Who]
	if !ok || t.state != TxnBlocked || t.pending == nil {
		return
	}
	op := t.pending
	t.pending = nil
	t.state = TxnActive
	t.held[e.Path.String()] = e.Mode
	m.stats.TotalBlockTime += e.At - t.blockedAt
	if op.write {
		t.undo = append(t.undo, m.store.apply(op.key, op.value))
	}
	if t.OnUnblock != nil {
		t.OnUnblock(e.At)
	}
}

// CheckTimeouts aborts every transaction blocked longer than the manager's
// timeout. It returns the aborted transactions. The experiment harness
// calls this periodically, standing in for a deadlock detector.
func (m *Manager) CheckTimeouts(now time.Duration) []*Txn {
	if m.timeout <= 0 {
		return nil
	}
	// Sorted id order: abort order feeds undo application and the event
	// trace, so it must not depend on map iteration.
	ids := make([]string, 0, len(m.active))
	for id := range m.active {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var out []*Txn
	for _, id := range ids {
		t := m.active[id]
		if t.state == TxnBlocked && now-t.blockedAt >= m.timeout {
			out = append(out, t)
		}
	}
	for _, t := range out {
		m.stats.TimeoutAborts++
		_ = t.Abort(now)
	}
	return out
}
