// Package txn implements the two concurrency-control worlds that Figure 2 of
// the paper contrasts:
//
//   - Conventional serialisable atomic transactions (strict two-phase
//     locking over the pessimistic lock manager, with undo on abort) — the
//     "walls between users" of Figure 2a. Deadlocks are resolved by
//     timeout-abort, the strategy of most contemporary systems.
//   - Transaction groups (Skarra & Zdonik 1989) — serialisability replaced
//     by semantic access rules that encode a *tailorable cooperation
//     policy*; members' operations apply immediately to a group store and
//     other members are notified, giving the "information flow between
//     users" of Figure 2b.
//
// Experiment F2 runs the same editing workload through both and measures
// response time, blocking and awareness (notification) flow.
package txn

import (
	"errors"
	"fmt"
	"sort"
)

// Errors returned by the transaction layer.
var (
	ErrTxnDone     = errors.New("txn: transaction already committed or aborted")
	ErrWouldBlock  = errors.New("txn: operation is waiting for a lock")
	ErrDenied      = errors.New("txn: operation denied by group access rules")
	ErrNotMember   = errors.New("txn: user is not a member of the group")
	ErrTimeoutSet  = errors.New("txn: aborted by deadlock timeout")
	ErrUnknownUser = errors.New("txn: unknown user")
)

// Store is a simple versioned key-value object store standing in for the
// shared information space of Figure 2 (a document, a design database...).
// It is deliberately single-threaded; over netsim everything runs on the
// simulator goroutine.
type Store struct {
	vals     map[string]string
	versions map[string]uint64
}

// NewStore creates an empty store.
func NewStore() *Store {
	return &Store{vals: make(map[string]string), versions: make(map[string]uint64)}
}

// Get returns the value and whether it exists.
func (s *Store) Get(key string) (string, bool) {
	v, ok := s.vals[key]
	return v, ok
}

// Version returns the monotonically increasing version of a key (0 if never
// written).
func (s *Store) Version(key string) uint64 { return s.versions[key] }

// Set writes a value, bumping the version.
func (s *Store) Set(key, val string) {
	s.vals[key] = val
	s.versions[key]++
}

// Delete removes a key (version still bumps, so observers can detect it).
func (s *Store) Delete(key string) {
	delete(s.vals, key)
	s.versions[key]++
}

// Len returns the number of live keys.
func (s *Store) Len() int { return len(s.vals) }

// Keys returns the live keys, sorted.
func (s *Store) Keys() []string {
	out := make([]string, 0, len(s.vals))
	for k := range s.vals {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Snapshot returns an independent copy of the store contents.
func (s *Store) Snapshot() map[string]string {
	out := make(map[string]string, len(s.vals))
	for k, v := range s.vals {
		out[k] = v
	}
	return out
}

// undoRecord captures the prior state of one key for abort processing.
type undoRecord struct {
	key      string
	hadValue bool
	oldValue string
}

func (s *Store) apply(key, val string) undoRecord {
	old, had := s.vals[key]
	s.Set(key, val)
	return undoRecord{key: key, hadValue: had, oldValue: old}
}

func (s *Store) undo(recs []undoRecord) {
	// Undo in reverse order so multiple writes to one key restore correctly.
	for i := len(recs) - 1; i >= 0; i-- {
		r := recs[i]
		if r.hadValue {
			s.Set(r.key, r.oldValue)
		} else {
			s.Delete(r.key)
		}
	}
}

// keyPath converts a store key into a lock path. Keys may be hierarchical
// ("doc/s1/p3"), mapping directly onto the lock granularity tree.
func keyPath(key string) []string {
	var segs []string
	start := 0
	for i := 0; i <= len(key); i++ {
		if i == len(key) || key[i] == '/' {
			if i > start {
				segs = append(segs, key[start:i])
			}
			start = i + 1
		}
	}
	if len(segs) == 0 {
		segs = []string{key}
	}
	return segs
}

// fmtTxnID builds the lock-principal name for a transaction.
func fmtTxnID(n uint64) string { return fmt.Sprintf("txn-%d", n) }
