package txn

import (
	"fmt"
	"sort"
	"time"
)

// AccessKind is the kind of operation a group member attempts.
type AccessKind int

const (
	// AccessRead reads a key.
	AccessRead AccessKind = iota + 1
	// AccessWrite writes a key.
	AccessWrite
)

// String returns the access kind name.
func (k AccessKind) String() string {
	if k == AccessRead {
		return "read"
	}
	return "write"
}

// AccessRequest describes one attempted operation inside a transaction
// group, submitted to the group's access rules.
type AccessRequest struct {
	User  string
	Key   string
	Kind  AccessKind
	Value string
	At    time.Duration
}

// Decision is a rule verdict.
type Decision int

const (
	// Allow permits the operation silently.
	Allow Decision = iota + 1
	// AllowNotify permits the operation and notifies the other members —
	// the "information flow between users" of Figure 2b.
	AllowNotify
	// Deny rejects the operation.
	Deny
	// Abstain defers to the next rule.
	Abstain
)

// String returns the decision name.
func (d Decision) String() string {
	switch d {
	case Allow:
		return "allow"
	case AllowNotify:
		return "allow+notify"
	case Deny:
		return "deny"
	case Abstain:
		return "abstain"
	default:
		return fmt.Sprintf("Decision(%d)", int(d))
	}
}

// Rule is one semantic access rule (Skarra & Zdonik): the *policy* of
// cooperation, tailorable per application by composing rules. Rules are
// evaluated in order; the first non-Abstain verdict wins, and a group whose
// rules all abstain denies by default.
type Rule struct {
	Name  string
	Judge func(req AccessRequest, g *Group) Decision
}

// GroupEvent is a notification flowing between group members.
type GroupEvent struct {
	Group string
	User  string // the actor
	To    string // the member being notified
	Key   string
	Kind  AccessKind
	Value string
	At    time.Duration
}

// GroupStats aggregates transaction-group activity.
type GroupStats struct {
	Ops           int
	Allowed       int
	Denied        int
	Notifications int
}

// Group is a transaction group: a set of cooperating members sharing an
// intermediate store governed by semantic access rules instead of
// serialisability. Operations apply immediately (no blocking, no walls);
// Commit merges the group store into the parent.
type Group struct {
	name    string
	parent  *Store
	local   *Store
	members map[string]bool
	rules   []Rule
	notify  func(GroupEvent)
	stats   GroupStats
	writers map[string]string // key -> last writer, for rules and audit
}

// NewGroup creates a transaction group over parent. The group store starts
// as a snapshot of the parent (members see a consistent base). notify may
// be nil.
func NewGroup(name string, parent *Store, rules []Rule, notify func(GroupEvent)) *Group {
	local := NewStore()
	for k, v := range parent.Snapshot() {
		local.Set(k, v)
	}
	return &Group{
		name:    name,
		parent:  parent,
		local:   local,
		members: make(map[string]bool),
		rules:   rules,
		notify:  notify,
		writers: make(map[string]string),
	}
}

// Name returns the group name.
func (g *Group) Name() string { return g.name }

// Subgroup creates a nested transaction group over this group's store —
// Skarra & Zdonik's groups compose hierarchically, so a chapter team can
// cooperate under its own rules inside the book team's group. The
// subgroup's Commit merges into this group's (uncommitted) store, which
// this group's Commit later merges upward.
func (g *Group) Subgroup(name string, rules []Rule, notify func(GroupEvent)) *Group {
	sub := NewGroup(name, g.local, rules, notify)
	return sub
}

// Stats returns accumulated statistics.
func (g *Group) Stats() GroupStats { return g.stats }

// Join adds a member.
func (g *Group) Join(user string) { g.members[user] = true }

// Leave removes a member.
func (g *Group) Leave(user string) { delete(g.members, user) }

// Members lists members, sorted.
func (g *Group) Members() []string {
	out := make([]string, 0, len(g.members))
	for m := range g.members {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// LastWriter reports which member last wrote key within the group.
func (g *Group) LastWriter(key string) string { return g.writers[key] }

// SetRules replaces the cooperation policy — the paper's requirement that
// policies be tailorable mid-collaboration.
func (g *Group) SetRules(rules []Rule) { g.rules = rules }

func (g *Group) judge(req AccessRequest) Decision {
	for _, r := range g.rules {
		if d := r.Judge(req, g); d != Abstain {
			return d
		}
	}
	return Deny
}

// Read reads key through the access rules. Reads never block; a denied read
// returns ErrDenied.
func (g *Group) Read(user, key string, now time.Duration) (string, error) {
	if !g.members[user] {
		return "", fmt.Errorf("%w: %s in %s", ErrNotMember, user, g.name)
	}
	g.stats.Ops++
	req := AccessRequest{User: user, Key: key, Kind: AccessRead, At: now}
	d := g.judge(req)
	if d == Deny {
		g.stats.Denied++
		return "", fmt.Errorf("%w: read %s by %s", ErrDenied, key, user)
	}
	g.stats.Allowed++
	if d == AllowNotify {
		g.broadcast(req)
	}
	v, _ := g.local.Get(key)
	return v, nil
}

// Write writes key through the access rules. Writes apply immediately to
// the group store — members are not isolated from each other.
func (g *Group) Write(user, key, value string, now time.Duration) error {
	if !g.members[user] {
		return fmt.Errorf("%w: %s in %s", ErrNotMember, user, g.name)
	}
	g.stats.Ops++
	req := AccessRequest{User: user, Key: key, Kind: AccessWrite, Value: value, At: now}
	d := g.judge(req)
	if d == Deny {
		g.stats.Denied++
		return fmt.Errorf("%w: write %s by %s", ErrDenied, key, user)
	}
	g.stats.Allowed++
	g.local.Set(key, value)
	g.writers[key] = user
	if d == AllowNotify {
		g.broadcast(req)
	}
	return nil
}

func (g *Group) broadcast(req AccessRequest) {
	if g.notify == nil {
		return
	}
	for _, m := range g.Members() {
		if m == req.User {
			continue
		}
		g.stats.Notifications++
		g.notify(GroupEvent{
			Group: g.name, User: req.User, To: m,
			Key: req.Key, Kind: req.Kind, Value: req.Value, At: req.At,
		})
	}
}

// Commit merges the group store into the parent store and returns the
// number of keys written. The group remains usable (long-lived cooperative
// sessions checkpoint periodically).
func (g *Group) Commit(now time.Duration) int {
	n := 0
	for _, k := range g.local.Keys() {
		v, _ := g.local.Get(k)
		if pv, ok := g.parent.Get(k); !ok || pv != v {
			g.parent.Set(k, v)
			n++
		}
	}
	return n
}

// Built-in rules implementing the cooperation policies the paper sketches.

// RuleReadAll permits every read (with notification if notify is true).
func RuleReadAll(notifyPeers bool) Rule {
	return Rule{
		Name: "read-all",
		Judge: func(req AccessRequest, _ *Group) Decision {
			if req.Kind != AccessRead {
				return Abstain
			}
			if notifyPeers {
				return AllowNotify
			}
			return Allow
		},
	}
}

// RuleOwnSection permits writes only to keys the sectionOf function maps to
// the writing user — the co-authoring policy ("your own section").
func RuleOwnSection(sectionOf func(key string) string) Rule {
	return Rule{
		Name: "own-section",
		Judge: func(req AccessRequest, _ *Group) Decision {
			if req.Kind != AccessWrite {
				return Abstain
			}
			if sectionOf(req.Key) == req.User {
				return AllowNotify
			}
			return Abstain
		},
	}
}

// RuleWriteNotify permits every write but notifies the other members — the
// brainstorming policy (full information flow, no walls).
func RuleWriteNotify() Rule {
	return Rule{
		Name: "write-notify",
		Judge: func(req AccessRequest, _ *Group) Decision {
			if req.Kind != AccessWrite {
				return Abstain
			}
			return AllowNotify
		},
	}
}

// RuleDenyWrites denies all writes — a review-phase policy.
func RuleDenyWrites() Rule {
	return Rule{
		Name: "deny-writes",
		Judge: func(req AccessRequest, _ *Group) Decision {
			if req.Kind == AccessWrite {
				return Deny
			}
			return Abstain
		},
	}
}
