package workflow

import (
	"fmt"
	"time"
)

// Step is one step of an office procedure, bound to a role.
type Step struct {
	Name string
	Role string
}

// Procedure is an ordered office procedure (the Domino model).
type Procedure struct {
	Name  string
	Steps []Step
}

// ProceduralEngine runs instances of a procedure: steps complete strictly
// in order, each by a user holding the step's role.
type ProceduralEngine struct {
	proc   Procedure
	roleOf map[string]string // user -> role
	items  map[string]*procItem
	stats  Stats
}

type procItem struct {
	step    int
	history []HistoryEntry
}

// NewProceduralEngine creates an engine for the procedure with the given
// user-role directory.
func NewProceduralEngine(proc Procedure, roleOf map[string]string) *ProceduralEngine {
	r := make(map[string]string, len(roleOf))
	for k, v := range roleOf {
		r[k] = v
	}
	return &ProceduralEngine{proc: proc, roleOf: r, items: make(map[string]*procItem)}
}

// Stats returns the attempt/rejection counts.
func (e *ProceduralEngine) Stats() Stats { return e.stats }

// Start creates a new instance of the procedure.
func (e *ProceduralEngine) Start(id string) error {
	if _, ok := e.items[id]; ok {
		return fmt.Errorf("%w: %s", ErrExists, id)
	}
	e.items[id] = &procItem{}
	return nil
}

// CurrentStep returns the name of the step an item is waiting on, or ""
// when the item is complete.
func (e *ProceduralEngine) CurrentStep(id string) (string, error) {
	it, ok := e.items[id]
	if !ok {
		return "", fmt.Errorf("%w: %s", ErrUnknownItem, id)
	}
	if it.step >= len(e.proc.Steps) {
		return "", nil
	}
	return e.proc.Steps[it.step].Name, nil
}

// Done reports whether the item finished all steps.
func (e *ProceduralEngine) Done(id string) bool {
	it, ok := e.items[id]
	return ok && it.step >= len(e.proc.Steps)
}

// Complete attempts to complete the named step of item id as user. Out of
// order steps and wrong roles are rejected (and counted).
func (e *ProceduralEngine) Complete(id, user, stepName string, now time.Duration) error {
	it, ok := e.items[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownItem, id)
	}
	e.stats.Attempts++
	if it.step >= len(e.proc.Steps) {
		e.stats.Rejections++
		return fmt.Errorf("%w: item already complete", ErrBadAct)
	}
	cur := e.proc.Steps[it.step]
	if stepName != cur.Name {
		e.stats.Rejections++
		return fmt.Errorf("%w: step %q while waiting on %q", ErrBadAct, stepName, cur.Name)
	}
	if e.roleOf[user] != cur.Role {
		e.stats.Rejections++
		return fmt.Errorf("%w: %s (role %q) cannot do %q (needs %q)",
			ErrWrongParty, user, e.roleOf[user], cur.Name, cur.Role)
	}
	it.step++
	it.history = append(it.history, HistoryEntry{User: user, At: now})
	return nil
}

// CompletionKnown: procedural engines always know (step pointer).
func (e *ProceduralEngine) CompletionKnown(id string) bool {
	_, ok := e.items[id]
	return ok
}

// --- Informal model ---

// Note is one free-form action on an informal work item.
type Note struct {
	User string
	Verb string
	Text string
	At   time.Duration
}

// InformalEngine is the Object-Lens-style free router: every act by any
// member is accepted and recorded. It never rejects — and consequently only
// knows an item is complete if somebody says so.
type InformalEngine struct {
	members map[string]bool
	items   map[string]*informalItem
	stats   Stats
}

type informalItem struct {
	notes      []Note
	markedDone bool
}

// NewInformalEngine creates an engine for the given members.
func NewInformalEngine(members []string) *InformalEngine {
	ms := make(map[string]bool, len(members))
	for _, m := range members {
		ms[m] = true
	}
	return &InformalEngine{members: ms, items: make(map[string]*informalItem)}
}

// Stats returns the attempt/rejection counts (rejections stay zero for
// members).
func (e *InformalEngine) Stats() Stats { return e.stats }

// Start creates a work item.
func (e *InformalEngine) Start(id string) error {
	if _, ok := e.items[id]; ok {
		return fmt.Errorf("%w: %s", ErrExists, id)
	}
	e.items[id] = &informalItem{}
	return nil
}

// Act records a free-form action. The verb "done" marks the item complete;
// "reopen" clears the mark. Everything from a member is accepted.
func (e *InformalEngine) Act(id, user, verb, text string, now time.Duration) error {
	it, ok := e.items[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownItem, id)
	}
	e.stats.Attempts++
	if !e.members[user] {
		e.stats.Rejections++
		return fmt.Errorf("%w: %s", ErrWrongParty, user)
	}
	it.notes = append(it.notes, Note{User: user, Verb: verb, Text: text, At: now})
	switch verb {
	case "done":
		it.markedDone = true
	case "reopen":
		it.markedDone = false
	}
	return nil
}

// Notes returns the item's history.
func (e *InformalEngine) Notes(id string) []Note {
	if it, ok := e.items[id]; ok {
		return append([]Note(nil), it.notes...)
	}
	return nil
}

// Done reports whether anyone has marked the item done.
func (e *InformalEngine) Done(id string) bool {
	it, ok := e.items[id]
	return ok && it.markedDone
}

// CompletionKnown: the informal engine only knows when someone told it; an
// item with activity but no "done"/"reopen" verdict is unknowable.
func (e *InformalEngine) CompletionKnown(id string) bool {
	it, ok := e.items[id]
	if !ok {
		return false
	}
	if it.markedDone {
		return true
	}
	for _, n := range it.notes {
		if n.Verb == "done" || n.Verb == "reopen" {
			return true
		}
	}
	return false
}
