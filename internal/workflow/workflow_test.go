package workflow

import (
	"errors"
	"testing"
)

func TestCfAHappyPath(t *testing.T) {
	e := NewSpeechActEngine()
	if err := e.Open("t1", "cust", "perf", 0); err != nil {
		t.Fatal(err)
	}
	steps := []struct {
		user string
		act  Act
		want CfAState
	}{
		{"perf", ActPromise, StateAgreed},
		{"perf", ActReport, StateReported},
		{"cust", ActApprove, StateCompleted},
	}
	for _, s := range steps {
		if err := e.Submit("t1", s.user, s.act, 0); err != nil {
			t.Fatalf("%s by %s: %v", s.act, s.user, err)
		}
		if st, _ := e.StateOf("t1"); st != s.want {
			t.Fatalf("state = %v, want %v", st, s.want)
		}
	}
	if st, _ := e.StateOf("t1"); !st.Closed() {
		t.Error("completed should be closed")
	}
	if e.Stats().Rejections != 0 {
		t.Errorf("stats = %+v", e.Stats())
	}
	if len(e.History("t1")) != 4 {
		t.Errorf("history = %v", e.History("t1"))
	}
}

func TestCfACounterNegotiation(t *testing.T) {
	e := NewSpeechActEngine()
	e.Open("t", "c", "p", 0)
	if err := e.Submit("t", "p", ActCounter, 1); err != nil {
		t.Fatal(err)
	}
	if err := e.Submit("t", "c", ActAcceptCounter, 2); err != nil {
		t.Fatal(err)
	}
	if st, _ := e.StateOf("t"); st != StateAgreed {
		t.Errorf("state = %v", st)
	}
}

func TestCfADeclineAndCancel(t *testing.T) {
	e := NewSpeechActEngine()
	e.Open("d", "c", "p", 0)
	e.Submit("d", "p", ActDecline, 1)
	if st, _ := e.StateOf("d"); st != StateDeclined {
		t.Errorf("state = %v", st)
	}
	e.Open("x", "c", "p", 0)
	e.Submit("x", "c", ActCancel, 1)
	if st, _ := e.StateOf("x"); st != StateCancelled {
		t.Errorf("state = %v", st)
	}
}

func TestCfARejectReportLoops(t *testing.T) {
	e := NewSpeechActEngine()
	e.Open("t", "c", "p", 0)
	e.Submit("t", "p", ActPromise, 1)
	e.Submit("t", "p", ActReport, 2)
	if err := e.Submit("t", "c", ActRejectReport, 3); err != nil {
		t.Fatal(err)
	}
	if st, _ := e.StateOf("t"); st != StateAgreed {
		t.Errorf("state after rejection = %v", st)
	}
	// Perform again and approve.
	e.Submit("t", "p", ActReport, 4)
	e.Submit("t", "c", ActApprove, 5)
	if st, _ := e.StateOf("t"); st != StateCompleted {
		t.Errorf("state = %v", st)
	}
}

func TestCfAPrescriptiveness(t *testing.T) {
	e := NewSpeechActEngine()
	e.Open("t", "c", "p", 0)
	// The real-world improvisations the paper's critique describes:
	cases := []struct {
		user string
		act  Act
		want error
	}{
		{"c", ActPromise, ErrBadAct},          // customer promising own request
		{"helper", ActPromise, ErrWrongParty}, // a colleague helping out
		{"p", ActReport, ErrBadAct},           // reporting before promising
		{"p", ActApprove, ErrBadAct},          // performer self-approving
	}
	for _, tc := range cases {
		if err := e.Submit("t", tc.user, tc.act, 0); !errors.Is(err, tc.want) {
			t.Errorf("%s by %s = %v, want %v", tc.act, tc.user, err, tc.want)
		}
	}
	st := e.Stats()
	if st.Rejections != 4 {
		t.Errorf("rejections = %d", st.Rejections)
	}
	if st.RejectionRate() <= 0.5 {
		t.Errorf("rate = %v", st.RejectionRate())
	}
	// Conversation state unharmed by rejected acts.
	if s, _ := e.StateOf("t"); s != StateProposed {
		t.Errorf("state = %v", s)
	}
}

func TestCfAClosedConversationRejectsEverything(t *testing.T) {
	e := NewSpeechActEngine()
	e.Open("t", "c", "p", 0)
	e.Submit("t", "p", ActDecline, 1)
	if err := e.Submit("t", "p", ActPromise, 2); !errors.Is(err, ErrBadAct) {
		t.Errorf("act on closed = %v", err)
	}
}

func TestCfAUnknownAndDuplicate(t *testing.T) {
	e := NewSpeechActEngine()
	if err := e.Submit("nope", "x", ActPromise, 0); !errors.Is(err, ErrUnknownItem) {
		t.Errorf("unknown = %v", err)
	}
	if _, err := e.StateOf("nope"); !errors.Is(err, ErrUnknownItem) {
		t.Errorf("StateOf = %v", err)
	}
	e.Open("t", "c", "p", 0)
	if err := e.Open("t", "c", "p", 0); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate = %v", err)
	}
	if !e.CompletionKnown("t") || e.CompletionKnown("nope") {
		t.Error("CompletionKnown wrong")
	}
}

// --- procedural ---

var expenseProc = Procedure{
	Name: "expense-claim",
	Steps: []Step{
		{Name: "submit", Role: "employee"},
		{Name: "approve", Role: "manager"},
		{Name: "pay", Role: "finance"},
	},
}

var staff = map[string]string{
	"ann": "employee", "mike": "manager", "fay": "finance",
}

func TestProceduralHappyPath(t *testing.T) {
	e := NewProceduralEngine(expenseProc, staff)
	if err := e.Start("claim1"); err != nil {
		t.Fatal(err)
	}
	if cur, _ := e.CurrentStep("claim1"); cur != "submit" {
		t.Fatalf("current = %q", cur)
	}
	for _, s := range []struct{ user, step string }{
		{"ann", "submit"}, {"mike", "approve"}, {"fay", "pay"},
	} {
		if err := e.Complete("claim1", s.user, s.step, 0); err != nil {
			t.Fatal(err)
		}
	}
	if !e.Done("claim1") {
		t.Error("should be done")
	}
	if cur, _ := e.CurrentStep("claim1"); cur != "" {
		t.Errorf("current after done = %q", cur)
	}
	if e.Stats().Rejections != 0 {
		t.Errorf("stats = %+v", e.Stats())
	}
}

func TestProceduralOutOfOrderAndWrongRole(t *testing.T) {
	e := NewProceduralEngine(expenseProc, staff)
	e.Start("c")
	if err := e.Complete("c", "fay", "pay", 0); !errors.Is(err, ErrBadAct) {
		t.Errorf("skip ahead = %v", err)
	}
	if err := e.Complete("c", "mike", "submit", 0); !errors.Is(err, ErrWrongParty) {
		t.Errorf("wrong role = %v", err)
	}
	e.Complete("c", "ann", "submit", 0)
	e.Complete("c", "mike", "approve", 0)
	e.Complete("c", "fay", "pay", 0)
	if err := e.Complete("c", "fay", "pay", 0); !errors.Is(err, ErrBadAct) {
		t.Errorf("complete after done = %v", err)
	}
	if e.Stats().Rejections != 3 {
		t.Errorf("rejections = %d", e.Stats().Rejections)
	}
}

func TestProceduralUnknownItem(t *testing.T) {
	e := NewProceduralEngine(expenseProc, staff)
	if err := e.Complete("nope", "ann", "submit", 0); !errors.Is(err, ErrUnknownItem) {
		t.Errorf("unknown = %v", err)
	}
	e.Start("c")
	if err := e.Start("c"); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate = %v", err)
	}
	if !e.CompletionKnown("c") || e.CompletionKnown("nope") {
		t.Error("CompletionKnown wrong")
	}
}

// --- informal ---

func TestInformalAcceptsEverything(t *testing.T) {
	e := NewInformalEngine([]string{"ann", "mike", "fay"})
	e.Start("memo")
	acts := []struct{ user, verb string }{
		{"ann", "draft"}, {"fay", "comment"}, {"mike", "edit"},
		{"ann", "forward"}, {"fay", "pay"}, // wildly out of any order
	}
	for _, a := range acts {
		if err := e.Act("memo", a.user, a.verb, "", 0); err != nil {
			t.Fatalf("%s by %s rejected: %v", a.verb, a.user, err)
		}
	}
	if e.Stats().Rejections != 0 {
		t.Errorf("rejections = %d", e.Stats().Rejections)
	}
	if len(e.Notes("memo")) != 5 {
		t.Errorf("notes = %d", len(e.Notes("memo")))
	}
	// But completion is unknown until declared.
	if e.CompletionKnown("memo") {
		t.Error("completion should be unknown")
	}
	e.Act("memo", "ann", "done", "", 0)
	if !e.CompletionKnown("memo") || !e.Done("memo") {
		t.Error("done mark not tracked")
	}
	e.Act("memo", "mike", "reopen", "", 0)
	if e.Done("memo") {
		t.Error("reopen should clear done")
	}
	if !e.CompletionKnown("memo") {
		t.Error("an explicit reopen is still a verdict")
	}
}

func TestInformalNonMember(t *testing.T) {
	e := NewInformalEngine([]string{"ann"})
	e.Start("m")
	if err := e.Act("m", "stranger", "steal", "", 0); !errors.Is(err, ErrWrongParty) {
		t.Errorf("stranger = %v", err)
	}
	if err := e.Act("nope", "ann", "x", "", 0); !errors.Is(err, ErrUnknownItem) {
		t.Errorf("unknown = %v", err)
	}
	if err := e.Start("m"); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate = %v", err)
	}
}

func TestEnumStrings(t *testing.T) {
	if StateProposed.String() != "proposed" || StateCompleted.String() != "completed" {
		t.Error("state names")
	}
	if ActPromise.String() != "promise" || ActRejectReport.String() != "reject-report" {
		t.Error("act names")
	}
	if (Stats{}).RejectionRate() != 0 {
		t.Error("zero stats rate")
	}
}

func BenchmarkCfAConversation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewSpeechActEngine()
		e.Open("t", "c", "p", 0)
		e.Submit("t", "p", ActPromise, 0)
		e.Submit("t", "p", ActReport, 0)
		e.Submit("t", "c", ActApprove, 0)
	}
}

func TestHistoryAndNotesAccessors(t *testing.T) {
	e := NewSpeechActEngine()
	if e.History("nope") != nil {
		t.Error("history of unknown item")
	}
	e.Open("t", "c", "p", 0)
	e.Submit("t", "p", ActPromise, 1)
	h := e.History("t")
	if len(h) != 2 || h[0].Act != ActRequest || h[1].Act != ActPromise {
		t.Errorf("history = %+v", h)
	}
	inf := NewInformalEngine([]string{"a"})
	if inf.Notes("nope") != nil {
		t.Error("notes of unknown item")
	}
	if inf.Done("nope") || inf.CompletionKnown("nope") {
		t.Error("unknown item verdicts")
	}
	for s, want := range map[CfAState]string{
		StateCountered: "countered", StateAgreed: "agreed", StateReported: "reported",
		StateDeclined: "declined", StateCancelled: "cancelled", CfAState(42): "CfAState(42)",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q", int(s), s.String())
		}
	}
	for a, want := range map[Act]string{
		ActRequest: "request", ActCounter: "counter", ActAcceptCounter: "accept-counter",
		ActDecline: "decline", ActReport: "report", ActApprove: "approve", ActCancel: "cancel",
	} {
		if a.String() != want {
			t.Errorf("%d.String() = %q", int(a), a.String())
		}
	}
}
