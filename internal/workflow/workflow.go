// Package workflow implements the three families of activity model the
// paper surveys (§3.2.1) and critiques (§4.1):
//
//   - SpeechAct: the conversation-for-action state machine of Co-ordinator
//     and Action Workflow (Winograd/Flores, Medina-Mora et al.): request,
//     promise/counter/decline, perform, report, approve. Strongly typed and
//     strongly *prescriptive* — any utterance outside the state machine is
//     rejected. The paper quotes the critique that this prescriptiveness is
//     what made users call Co-ordinator "the world's first fascist computer
//     system"; the engine counts every rejection so experiment E10 can
//     quantify it.
//   - Procedural: Domino-style office procedures — an ordered sequence of
//     steps, each bound to a role; steps complete in order by the right
//     role.
//   - Informal: Object-Lens-style free routing — any member may do anything
//     to a work item; everything is accepted and recorded, but the system
//     can only *guess* at completion (the trade-off in the other
//     direction).
//
// All three expose attempt/rejection counts and a completion-tracking
// verdict, the measures E10 reports.
package workflow

import (
	"errors"
	"fmt"
	"time"
)

// Stats counts attempted and rejected transitions — the prescriptiveness
// measure.
type Stats struct {
	Attempts   int
	Rejections int
}

// RejectionRate returns rejections per attempt.
func (s Stats) RejectionRate() float64 {
	if s.Attempts == 0 {
		return 0
	}
	return float64(s.Rejections) / float64(s.Attempts)
}

// Errors returned by the engines.
var (
	ErrUnknownItem = errors.New("workflow: unknown work item")
	ErrBadAct      = errors.New("workflow: act not permitted in current state")
	ErrWrongParty  = errors.New("workflow: act not permitted for this participant")
	ErrExists      = errors.New("workflow: item already exists")
)

// --- Speech-act model (conversation for action) ---

// CfAState is a conversation-for-action state.
type CfAState int

const (
	// StateProposed: the customer has requested; awaiting the performer.
	StateProposed CfAState = iota + 1
	// StateCountered: the performer counter-offered; awaiting the customer.
	StateCountered
	// StateAgreed: promise made; performance under way.
	StateAgreed
	// StateReported: performer declared completion; awaiting approval.
	StateReported
	// StateCompleted: customer approved; conversation closed.
	StateCompleted
	// StateDeclined: performer declined; closed.
	StateDeclined
	// StateCancelled: customer withdrew; closed.
	StateCancelled
)

// String returns the state name.
func (s CfAState) String() string {
	switch s {
	case StateProposed:
		return "proposed"
	case StateCountered:
		return "countered"
	case StateAgreed:
		return "agreed"
	case StateReported:
		return "reported"
	case StateCompleted:
		return "completed"
	case StateDeclined:
		return "declined"
	case StateCancelled:
		return "cancelled"
	default:
		return fmt.Sprintf("CfAState(%d)", int(s))
	}
}

// Closed reports whether the state is terminal.
func (s CfAState) Closed() bool {
	return s == StateCompleted || s == StateDeclined || s == StateCancelled
}

// Act is a speech act.
type Act int

const (
	// ActRequest opens a conversation (implicit in Open; kept for history).
	ActRequest Act = iota + 1
	// ActPromise commits the performer.
	ActPromise
	// ActCounter proposes different conditions.
	ActCounter
	// ActAcceptCounter accepts the performer's counter.
	ActAcceptCounter
	// ActDecline refuses the request.
	ActDecline
	// ActReport declares the work done.
	ActReport
	// ActApprove accepts the reported work.
	ActApprove
	// ActRejectReport sends the work back to performance.
	ActRejectReport
	// ActCancel withdraws the request.
	ActCancel
)

// String returns the act name.
func (a Act) String() string {
	names := map[Act]string{
		ActRequest: "request", ActPromise: "promise", ActCounter: "counter",
		ActAcceptCounter: "accept-counter", ActDecline: "decline",
		ActReport: "report", ActApprove: "approve",
		ActRejectReport: "reject-report", ActCancel: "cancel",
	}
	if n, ok := names[a]; ok {
		return n
	}
	return fmt.Sprintf("Act(%d)", int(a))
}

// HistoryEntry records one accepted act.
type HistoryEntry struct {
	User string
	Act  Act
	At   time.Duration
}

type conversation struct {
	customer  string
	performer string
	state     CfAState
	history   []HistoryEntry
}

// SpeechActEngine runs conversation-for-action work items.
type SpeechActEngine struct {
	convs map[string]*conversation
	stats Stats
}

// NewSpeechActEngine creates an empty engine.
func NewSpeechActEngine() *SpeechActEngine {
	return &SpeechActEngine{convs: make(map[string]*conversation)}
}

// Stats returns the attempt/rejection counts.
func (e *SpeechActEngine) Stats() Stats { return e.stats }

// Open starts a conversation: customer requests work from performer.
func (e *SpeechActEngine) Open(id, customer, performer string, now time.Duration) error {
	if _, ok := e.convs[id]; ok {
		return fmt.Errorf("%w: %s", ErrExists, id)
	}
	e.stats.Attempts++
	e.convs[id] = &conversation{
		customer: customer, performer: performer, state: StateProposed,
		history: []HistoryEntry{{User: customer, Act: ActRequest, At: now}},
	}
	return nil
}

// StateOf returns the conversation state.
func (e *SpeechActEngine) StateOf(id string) (CfAState, error) {
	c, ok := e.convs[id]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrUnknownItem, id)
	}
	return c.state, nil
}

// History returns the accepted acts of a conversation.
func (e *SpeechActEngine) History(id string) []HistoryEntry {
	if c, ok := e.convs[id]; ok {
		return append([]HistoryEntry(nil), c.history...)
	}
	return nil
}

// Submit attempts a speech act by user on conversation id. Anything outside
// the state machine — wrong state, wrong party — is rejected and counted.
func (e *SpeechActEngine) Submit(id, user string, act Act, now time.Duration) error {
	c, ok := e.convs[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownItem, id)
	}
	e.stats.Attempts++
	reject := func(err error) error {
		e.stats.Rejections++
		return fmt.Errorf("%w: %s by %s in %s", err, act, user, c.state)
	}
	isCustomer := user == c.customer
	isPerformer := user == c.performer
	if !isCustomer && !isPerformer {
		return reject(ErrWrongParty) // third parties may not speak at all
	}
	var next CfAState
	switch {
	case c.state == StateProposed && isPerformer && act == ActPromise:
		next = StateAgreed
	case c.state == StateProposed && isPerformer && act == ActCounter:
		next = StateCountered
	case c.state == StateProposed && isPerformer && act == ActDecline:
		next = StateDeclined
	case c.state == StateProposed && isCustomer && act == ActCancel:
		next = StateCancelled
	case c.state == StateCountered && isCustomer && act == ActAcceptCounter:
		next = StateAgreed
	case c.state == StateCountered && isCustomer && act == ActCancel:
		next = StateCancelled
	case c.state == StateCountered && isPerformer && act == ActDecline:
		next = StateDeclined
	case c.state == StateAgreed && isPerformer && act == ActReport:
		next = StateReported
	case c.state == StateAgreed && isCustomer && act == ActCancel:
		next = StateCancelled
	case c.state == StateReported && isCustomer && act == ActApprove:
		next = StateCompleted
	case c.state == StateReported && isCustomer && act == ActRejectReport:
		next = StateAgreed
	default:
		if !isCustomer && !isPerformer {
			return reject(ErrWrongParty)
		}
		return reject(ErrBadAct)
	}
	c.state = next
	c.history = append(c.history, HistoryEntry{User: user, Act: act, At: now})
	return nil
}

// CompletionKnown reports whether the engine can definitively say the item
// is complete or not complete: for speech acts it always can.
func (e *SpeechActEngine) CompletionKnown(id string) bool {
	_, ok := e.convs[id]
	return ok
}
