// Quickstart: two users co-edit one document with operation transformation
// — the paper's "operations proceed immediately to improve real-time
// response time" (GROVE), in its provably convergent centrally-ordered
// form. No network setup: everything runs in-process.
package main

import (
	"fmt"
	"log"

	"repro/internal/ot"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	srv := ot.NewServer("CSCW challenges ODP")
	alice := ot.NewClient("alice", srv)
	bob := ot.NewClient("bob", srv)
	fmt.Printf("initial document: %q\n\n", srv.Text())

	// Both edit *concurrently*, before seeing each other's changes:
	// alice prepends "The ", bob appends " standards".
	var wire []ot.Submission
	for i, ch := range "The " {
		sub, send, err := alice.Generate(ot.Op{Kind: ot.Insert, Pos: i, Ch: ch})
		if err != nil {
			return err
		}
		if send {
			wire = append(wire, sub)
		}
	}
	base := len([]rune("CSCW challenges ODP"))
	for i, ch := range " standards" {
		sub, send, err := bob.Generate(ot.Op{Kind: ot.Insert, Pos: base + i, Ch: ch})
		if err != nil {
			return err
		}
		if send {
			wire = append(wire, sub)
		}
	}
	fmt.Printf("alice sees (optimistic): %q\n", alice.Text())
	fmt.Printf("bob   sees (optimistic): %q\n\n", bob.Text())

	// The server integrates submissions in arrival order and fans commits
	// out; acknowledgements release each client's buffered operations.
	for len(wire) > 0 {
		sub := wire[0]
		wire = wire[1:]
		cm, err := srv.Submit(sub.Op, sub.Base, sub.Site, sub.Seq)
		if err != nil {
			return err
		}
		for _, c := range []*ot.Client{alice, bob} {
			next, send, err := c.Integrate(cm)
			if err != nil {
				return err
			}
			if send {
				wire = append(wire, next)
			}
		}
	}

	fmt.Printf("server: %q\n", srv.Text())
	fmt.Printf("alice:  %q\n", alice.Text())
	fmt.Printf("bob:    %q\n", bob.Text())
	if alice.Text() != srv.Text() || bob.Text() != srv.Text() {
		return fmt.Errorf("divergence! this should be impossible")
	}
	fmt.Println("\nall three copies converged with zero editing latency at either user")
	return nil
}
