// Mobilefield: a utilities field engineer's day (the paper's MOST project
// scenario, §3.3.3/§4.2.2) — hoard the day's jobs on the depot LAN, work
// through radio patches and dead spots, reintegrate on reconnection, and
// bulk-refresh the cache when the high-speed link returns.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/mobile"
	"repro/internal/netsim"
	"repro/internal/txn"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The office job database.
	office := txn.NewStore()
	jobs := []string{"job/101", "job/102", "job/103", "job/104"}
	for _, j := range jobs {
		office.Set(j, "assigned to eng-7")
	}
	office.Set("map/grid-44", "substation layout v3")

	eng := mobile.NewClient("eng-7", office, mobile.ServerWins)
	eng.OnConflict = func(c mobile.Conflict) {
		fmt.Printf("           CONFLICT on %s: field %q vs office %q — queued for manual repair\n",
			c.Key, c.ClientValue, c.ServerValue)
	}

	clock := time.Duration(0)
	at := func(d time.Duration, what string) {
		clock = d
		fmt.Printf("%8s  %s\n", clock, what)
	}

	// 08:00 depot LAN: hoard the day's working set.
	at(0, "depot (full connection): hoarding today's jobs and the grid map")
	eng.Hoard(append(jobs, "map/grid-44")...)

	// 08:30 driving out: radio link.
	at(30*time.Minute, "on the road (partial connection): reading job 101 over radio")
	eng.SetLevel(netsim.Partial, clock)
	v, err := eng.Read("job/101", clock)
	if err != nil {
		return err
	}
	fmt.Printf("           job/101 = %q\n", v)

	// 09:10 dead spot at the substation: disconnected operation.
	at(70*time.Minute, "substation cellar (disconnected): working from the hoard")
	eng.SetLevel(netsim.Disconnected, clock)
	for _, step := range []struct{ key, val string }{
		{"job/101", "in progress"},
		{"job/101", "done: transformer inspected"},
		{"job/102", "in progress"},
	} {
		if err := eng.Write(step.key, step.val, clock); err != nil {
			return err
		}
		fmt.Printf("           wrote %s = %q (logged, %d pending)\n", step.key, step.val, eng.LogLen())
	}
	if v, err := eng.Read("job/103", clock); err == nil {
		fmt.Printf("           hoarded read job/103 = %q\n", v)
	}
	if _, err := eng.Read("job/999", clock); err != nil {
		fmt.Printf("           unhoarded job/999: %v\n", err)
	}

	// Meanwhile the office reassigns a job the engineer is holding edits
	// for, and updates the map.
	office.Set("job/102", "REASSIGNED to eng-3 (emergency)")
	office.Set("map/grid-44", "substation layout v4")

	// 11:00 hilltop: radio returns — reintegration.
	at(3*time.Hour, "hilltop (partial connection): reintegrating the disconnected log")
	conflicts := eng.SetLevel(netsim.Partial, clock)
	fmt.Printf("           %d record(s) replayed, %d conflict(s)\n", eng.Stats().Replayed, len(conflicts))
	if v, _ := office.Get("job/101"); v != "" {
		fmt.Printf("           office now sees job/101 = %q\n", v)
	}

	// 17:00 back at the depot: full LAN — bulk update of stale cache.
	at(9*time.Hour, "depot (full connection): bulk refresh of stale entries")
	eng.SetLevel(netsim.Full, clock)
	fmt.Printf("           bulk fetched %d stale entr(ies)\n", eng.Stats().BulkFetched)
	eng.SetLevel(netsim.Disconnected, clock+time.Minute) // prove it's cached
	if v, err := eng.Read("map/grid-44", clock+time.Minute); err == nil {
		fmt.Printf("           offline read after bulk update: map/grid-44 = %q\n", v)
	}

	st := eng.Stats()
	fmt.Printf("\nday's tally: %d local hits, %d remote reads, %d logged writes, %d conflicts, %d misses\n",
		st.LocalHits, st.RemoteReads, st.LoggedWrites, st.Conflicts, st.Misses)
	return nil
}
