// Mediaspace: the paper's §3.3.2 media spaces — the Xerox PARC coffee-room
// video wall and EuroPARC's Portholes — rebuilt on the rooms model. People
// move between offices and shared rooms, doors govern what leaks out, and a
// Portholes service distributes periodic low-fidelity snapshots that give
// everyone ambient awareness of the whole lab.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/awareness"
	"repro/internal/netsim"
	"repro/internal/rooms"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sim := netsim.New(3, netsim.LANLink)
	space := awareness.NewSpace(awareness.Config{DisableTemporal: true})
	house := rooms.NewHouse(space)
	house.AddRoom("gordon-office", rooms.Office, "gordon", awareness.Vec{X: 0})
	house.AddRoom("tom-office", rooms.Office, "tom", awareness.Vec{X: 3})
	house.AddRoom("lab", rooms.MeetingRoom, "", awareness.Vec{X: 6})
	house.AddRoom("coffee", rooms.MeetingRoom, "", awareness.Vec{X: 9})
	house.OnEvent = func(e rooms.Event) {
		fmt.Printf("%8s  %-8s %s %s\n", sim.Now().Round(time.Second), e.User, e.Kind, e.Room)
	}

	ms := rooms.NewMediaSpace(house)
	ms.Subscribe("gordon", func(p rooms.Porthole) {
		fmt.Printf("%8s  gordon's porthole wall: %s\n", sim.Now().Round(time.Second), p)
	})

	// The morning unfolds.
	sim.At(0, func() { house.Enter("gordon", "gordon-office", sim.Now()) })
	sim.At(time.Minute, func() { house.Enter("tom", "tom-office", sim.Now()) })
	sim.At(2*time.Minute, func() {
		house.Activity("tom", sim.Now())
		house.Activity("tom", sim.Now())
	})
	sim.At(3*time.Minute, func() { house.Enter("nigel", "coffee", sim.Now()) })
	sim.At(4*time.Minute, func() { house.Enter("tom", "coffee", sim.Now()) })
	// Gordon sees the coffee room filling up on his porthole wall and joins.
	sim.At(6*time.Minute, func() { house.Enter("gordon", "coffee", sim.Now()) })
	// Afternoon: tom needs focus — door closed, invisible to the wall.
	sim.At(8*time.Minute, func() {
		house.Enter("tom", "tom-office", sim.Now())
		house.SetDoor("tom", "tom-office", rooms.Closed, sim.Now())
		house.Activity("tom", sim.Now())
	})
	// Nigel knocks; tom cracks the door ajar and admits him.
	sim.At(9*time.Minute, func() {
		house.SetDoor("tom", "tom-office", rooms.Ajar, sim.Now())
		house.Knock("nigel", "tom-office", sim.Now())
		house.Admit("tom", "nigel", "tom-office", sim.Now())
		house.Enter("nigel", "tom-office", sim.Now())
	})

	// The Portholes service snapshots every two minutes.
	sim.Every(2*time.Minute, func() bool {
		ms.Snapshot(sim.Now())
		return sim.Now() < 10*time.Minute
	})
	sim.Run()

	fmt.Printf("\nportholes published: %d\n", ms.Published)
	fmt.Println("closed doors published nothing; ajar doors published presence without identity —")
	fmt.Println("ambient awareness with the occupants in control, as the media-space studies required")
	return nil
}
