// Coauthoring: a Quilt-style review cycle over the multi-user hypertext,
// with Shen-Dewan roles deciding who may edit, annotate and resolve, and a
// transaction group giving the co-authors Figure 2b information flow
// instead of transaction walls.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/access"
	"repro/internal/hyperdoc"
	"repro/internal/txn"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// --- Roles: authors edit, reviewers annotate, the editor resolves. ---
	sys := access.NewSystem(nil)
	sys.DefineRole("author",
		access.Entry{Pattern: "*", Rights: access.Read | access.Write})
	sys.DefineRole("reviewer",
		access.Entry{Pattern: "*", Rights: access.Read | access.Append})
	sys.DefineRole("editor",
		access.Entry{Pattern: "*", Rights: access.Read | access.Write | access.Lock | access.Grant})
	sys.Assign("gordon", "author", 0)
	sys.Assign("tom", "author", 0)
	sys.Assign("rita", "reviewer", 0)
	sys.Assign("ed", "editor", 0)

	perm := func(user, op string, n *hyperdoc.Node) bool {
		switch op {
		case "edit":
			return sys.Check(user, "paper", access.Write)
		case "annotate":
			return sys.Check(user, "paper", access.Append) || sys.Check(user, "paper", access.Write)
		case "resolve":
			return sys.Check(user, "paper", access.Lock)
		}
		return false
	}
	doc := hyperdoc.NewDocument(perm)

	// --- The authors draft independently (IDs never collide). ---
	intro, err := doc.AddBase("gordon", "CSCW challanges the principles of ODP.", 0)
	if err != nil {
		return err
	}
	if _, err := doc.AddBase("tom", "Transparency must be balanced against awareness.", time.Second); err != nil {
		return err
	}
	fmt.Println("draft:")
	fmt.Println(" ", doc.Text())

	// --- Review: a comment thread and a revision suggestion. ---
	c1, err := doc.Annotate("rita", intro, hyperdoc.Comment, "Strong opening, but check the spelling.", 2*time.Second)
	if err != nil {
		return err
	}
	if _, err := doc.Annotate("gordon", c1, hyperdoc.Comment, "Good catch — suggesting a fix.", 3*time.Second); err != nil {
		return err
	}
	sug, err := doc.Annotate("rita", intro, hyperdoc.Suggestion, "CSCW challenges the principles of ODP.", 4*time.Second)
	if err != nil {
		return err
	}
	fmt.Println("\nreview thread on the intro:")
	for _, te := range doc.Thread(intro) {
		n, _ := doc.Node(te.ID)
		fmt.Printf("  %*s%s (%s): %s\n", te.Depth*2, "", n.Kind, n.Author, n.Content)
	}

	// A reviewer cannot silently rewrite the base — the role stops it.
	if err := doc.Edit("rita", intro, 1, "my version", 5*time.Second); err != nil {
		fmt.Printf("\nrita tries to edit the base directly: %v\n", err)
	}

	// --- The editor accepts the suggestion; the base updates. ---
	if err := doc.Resolve("ed", sug, true, 6*time.Second); err != nil {
		return err
	}
	fmt.Println("\nafter the editor accepts the suggestion:")
	fmt.Println(" ", doc.Text())

	// --- Figure 2b: the working session is a transaction group, so each
	// author's keystrokes are visible to (and notify) the others. ---
	store := txn.NewStore()
	g := txn.NewGroup("writing-session", store,
		[]txn.Rule{txn.RuleReadAll(false), txn.RuleWriteNotify()},
		func(e txn.GroupEvent) {
			fmt.Printf("  [notify %s] %s %s %s\n", e.To, e.User, e.Kind, e.Key)
		})
	g.Join("gordon")
	g.Join("tom")
	fmt.Println("\nlive session (every write flows to the co-author):")
	if err := g.Write("gordon", "paper/conclusion", "Closer cooperation is needed.", 7*time.Second); err != nil {
		return err
	}
	v, err := g.Read("tom", "paper/conclusion", 8*time.Second)
	if err != nil {
		return err
	}
	fmt.Printf("  tom reads gordon's uncommitted text: %q\n", v)
	n := g.Commit(9 * time.Second)
	fmt.Printf("  checkpointed %d object(s) to the shared store\n", n)
	return nil
}
