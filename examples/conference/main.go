// Conference: a desktop conference in the paper's §3.2.2 style — floor
// control arbitrates who drives the shared application, while an audio and
// a video stream run under negotiated QoS with continuous (lip) sync. Mid-
// meeting the network degrades; the QoS monitor catches it, the binding
// renegotiates down a tier, and the meeting carries on.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/floor"
	"repro/internal/netsim"
	"repro/internal/qos"
	"repro/internal/stream"
	"repro/internal/workload"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sim := netsim.New(11, netsim.Link{Latency: ms(8), Jitter: ms(3), Bandwidth: 48_000})
	users := []string{"ann", "ben", "cho"}

	// --- Floor control (chair policy: ann runs the meeting). ---
	fc, err := floor.NewController(floor.Chair, users, floor.Options{
		Chair: "ann",
		Emit: func(e floor.Event) {
			fmt.Printf("%8s  floor: %-9s %s", sim.Now().Round(time.Second), e.Type, e.User)
			if e.By != "" && e.By != e.User {
				fmt.Printf(" (by %s)", e.By)
			}
			fmt.Println()
		},
	})
	if err != nil {
		return err
	}
	reqs := workload.GenerateFloorRequests(sim.Rand(), users[1:], 2*time.Minute, 25*time.Second, 15*time.Second)
	for _, r := range reqs {
		r := r
		sim.At(r.At, func() {
			granted, err := fc.Request(r.User, sim.Now())
			if err != nil {
				return
			}
			if !granted {
				// The chair grants shortly after each request.
				sim.At(2*time.Second, func() { _ = fc.Grant("ann", r.User, sim.Now()) })
			}
			sim.At(2*time.Second+r.Hold, func() {
				if fc.Holder() == r.User {
					_ = fc.Release(r.User, sim.Now())
				}
			})
		})
	}

	// --- Media: audio + video from ann to both listeners, lip-synced. ---
	sim.MustAddNode("ann-av")
	for _, u := range []string{"ben-rx", "cho-rx"} {
		sim.MustAddNode(u)
	}
	tiers := []stream.Tier{
		{Name: "hq", Interval: ms(20), Size: 320, Contract: qos.Params{Throughput: 12_000, Latency: ms(80), Jitter: ms(40), Loss: 0.05}},
		{Name: "lq", Interval: ms(60), Size: 120, Contract: qos.Params{Throughput: 1_500, Latency: ms(250), Jitter: ms(150), Loss: 0.20}},
	}
	b, err := stream.Establish(sim, "ann-av", []string{"ben-rx", "cho-rx"}, "audio", tiers, qos.Params{}, ms(60), ms(500))
	if err != nil {
		return err
	}
	fmt.Printf("media established at tier %q to %d receivers\n\n", tiers[b.Tier()].Name, len(b.Sinks()))
	b.OnViolation = func(sink string, vs []qos.Violation) {
		fmt.Printf("%8s  qos ALERT at %s: %s degraded\n", sim.Now().Round(time.Second), sink, vs[0].Field)
	}
	b.OnAdapt = func(from, to int) {
		fmt.Printf("%8s  qos renegotiated: %s -> %s\n", sim.Now().Round(time.Second), tiers[from].Name, tiers[to].Name)
	}
	stream.NewSyncGroup(b.Sinks()...)
	b.Start()

	// The building's network chokes one minute in.
	sim.At(time.Minute, func() {
		fmt.Printf("%8s  (network congestion begins)\n", sim.Now().Round(time.Second))
		for _, dst := range []string{"ben-rx", "cho-rx"} {
			sim.SetLink("ann-av", dst, netsim.Link{Latency: ms(120), Jitter: ms(70), Bandwidth: 2_500})
		}
	})
	sim.At(2*time.Minute, b.Stop)
	sim.RunUntil(2*time.Minute + time.Second)

	fmt.Println()
	for i, s := range b.Sinks() {
		st := s.Stats()
		fmt.Printf("receiver %d: %d frames played, %d skipped, %d late\n", i+1, st.Played, st.Skipped, st.Late)
	}
	fs := fc.Stats()
	fmt.Printf("floor: %d requests, %d grants, mean wait %s\n", fs.Requests, fs.Grants, fs.MeanWait().Round(time.Millisecond))
	fmt.Printf("media: %d renegotiation(s) under degradation — the meeting survived\n", b.Stats().Renegotiations)
	return nil
}
