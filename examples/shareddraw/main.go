// Shareddraw: the two §3.2.2 conferencing approaches side by side on the
// same task — a shared whiteboard.
//
// Round 1 shares an unmodified single-user whiteboard collaboration-
// transparently (package sharedapp): input is multidropped under floor
// control, output multicast, every view identical, one hand on the pen.
//
// Round 2 runs the collaboration-aware way (package ot): everyone draws at
// once with zero local latency and the operation-transformation layer makes
// the boards converge — the generational step the paper describes.
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"repro/internal/floor"
	"repro/internal/ot"
	"repro/internal/sharedapp"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// whiteboard is a single-user app: each input appends a stroke label.
func whiteboard() sharedapp.App {
	var strokes []string
	return sharedapp.AppFunc(func(input string) (string, error) {
		strokes = append(strokes, input)
		return "[" + strings.Join(strokes, " ") + "]", nil
	})
}

func run() error {
	users := []string{"ann", "ben", "cho"}

	fmt.Println("-- round 1: collaboration-transparent (floor-controlled turns) --")
	conf, err := sharedapp.New(whiteboard(), floor.FreeFloor, users, floor.Options{})
	if err != nil {
		return err
	}
	for _, u := range users {
		u := u
		if u == "ann" { // one representative display is enough to print
			conf.Attach(u, func(f sharedapp.Frame) {
				fmt.Printf("  %s's screen after %s drew: %s\n", u, f.By, f.Output)
			})
		} else {
			conf.Attach(u, func(sharedapp.Frame) {})
		}
	}
	now := time.Duration(0)
	for i, u := range users {
		if _, err := conf.Floor().Request(u, now); err != nil {
			return err
		}
		if err := conf.Input(u, fmt.Sprintf("%s-stroke%d", u, i+1), now); err != nil {
			fmt.Printf("  %s tried to draw without the floor: %v\n", u, err)
			continue
		}
		conf.Floor().Release(u, now)
		now += time.Second
	}
	st := conf.Stats()
	fmt.Printf("  turns taken: %d; inputs rejected: %d (no interleaving possible)\n\n", st.Inputs, st.Rejected)

	fmt.Println("-- round 2: collaboration-aware (everyone draws at once, OT converges) --")
	srv := ot.NewServer("")
	clients := make(map[string]*ot.Client, len(users))
	var wire []ot.Submission
	for _, u := range users {
		clients[u] = ot.NewClient(u, srv)
	}
	// All three draw concurrently: each types their initial at position 0.
	for _, u := range users {
		sub, send, err := clients[u].Generate(ot.Op{Kind: ot.Insert, Pos: 0, Ch: rune(u[0])})
		if err != nil {
			return err
		}
		if send {
			wire = append(wire, sub)
		}
		fmt.Printf("  %s sees instantly: %q\n", u, clients[u].Text())
	}
	for len(wire) > 0 {
		sub := wire[0]
		wire = wire[1:]
		cm, err := srv.Submit(sub.Op, sub.Base, sub.Site, sub.Seq)
		if err != nil {
			return err
		}
		for _, u := range users {
			next, send, err := clients[u].Integrate(cm)
			if err != nil {
				return err
			}
			if send {
				wire = append(wire, next)
			}
		}
	}
	fmt.Printf("  after convergence, every board shows: %q\n", srv.Text())
	for _, u := range users {
		if clients[u].Text() != srv.Text() {
			return fmt.Errorf("%s diverged", u)
		}
	}
	fmt.Println("  three simultaneous pens, zero waiting, one consistent board")
	return nil
}
