// ATC: the paper's illustrative example (§2.3) — an electronic flight
// progress board. Flight strips arrive, are *manually* placed by
// controllers (the ethnographic finding: automation must not steal the
// placement act), and move between sector bays on handoff. The spatial
// awareness model gives every controller the "at a glance" view: actions in
// your own sector arrive at full strength, the neighbour sector murmurs at
// the periphery, and a colleague drowning in strips becomes visible in time
// to help.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/awareness"
	"repro/internal/netsim"
	"repro/internal/workload"
)

const nSectors = 3

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sim := netsim.New(7, netsim.LANLink)

	// Controllers sit at their sector positions; focus reaches the
	// neighbouring sector, nimbus carries their actions just as far.
	space := awareness.NewSpace(awareness.Config{Threshold: 0.05, DisableTemporal: true})
	controllers := []string{"ctrl-0", "ctrl-1", "ctrl-2"}
	for i, c := range controllers {
		space.Place(awareness.Entity{
			ID: c, Pos: awareness.SectionPos(i), Aura: 5, Focus: 1.8, Nimbus: 1.8,
		})
	}
	engine := awareness.NewEngine(space)
	for _, c := range controllers {
		c := c
		engine.Subscribe(c, func(d awareness.Delivery) {
			fmt.Printf("%8s  %s sees %-7s: %-28s (weight %.2f)\n",
				sim.Now().Round(time.Second), c, d.Level, d.Event.Kind, d.Weight)
		})
	}

	// The strip board: strips per sector bay, in controller-chosen order.
	bays := make([][]string, nSectors)
	load := func(s int) int { return len(bays[s]) }

	flights := workload.GenerateFlights(sim.Rand(), 12*time.Minute, 0.8, nSectors)
	fmt.Printf("%d flights over 12 minutes, %d sectors\n\n", len(flights), nSectors)

	for _, f := range flights {
		f := f
		sim.At(f.Arrive, func() {
			sector := f.Sectors[0]
			// Manual placement: the controller chooses the slot; the system
			// does NOT auto-sort (the Lancaster finding). New strips go
			// where the controller's attention is — here, the top.
			bays[sector] = append([]string{f.Callsign}, bays[sector]...)
			engine.Publish(awareness.Event{
				Actor: controllers[sector],
				Kind:  "strip-placed " + f.Callsign,
				At:    sim.Now(),
			})
			// Overload check: a busy neighbour is *visible*, so help comes
			// unprompted — the cooperative reliability of §2.3.
			if load(sector) >= 4 {
				helper := controllers[(sector+1)%nSectors]
				sim.At(15*time.Second, func() {
					if load(sector) < 4 {
						return
					}
					moved := bays[sector][len(bays[sector])-1]
					bays[sector] = bays[sector][:len(bays[sector])-1]
					engine.Publish(awareness.Event{
						Actor: helper,
						Kind:  "assist: took " + moved,
						At:    sim.Now(),
					})
				})
			}
			// Handoffs along the flight's sector route.
			for hop := 1; hop < len(f.Sectors); hop++ {
				hop := hop
				sim.At(time.Duration(hop)*90*time.Second, func() {
					from, to := f.Sectors[hop-1], f.Sectors[hop]
					for i, cs := range bays[from] {
						if cs == f.Callsign {
							bays[from] = append(bays[from][:i], bays[from][i+1:]...)
							bays[to] = append([]string{f.Callsign}, bays[to]...)
							engine.Publish(awareness.Event{
								Actor: controllers[from],
								Kind:  fmt.Sprintf("handoff %s ->s%d", f.Callsign, to),
								At:    sim.Now(),
							})
							return
						}
					}
				})
			}
		})
	}
	sim.Run()

	fmt.Println("\nfinal board:")
	for s := range bays {
		fmt.Printf("  sector %d (%s): %v\n", s, controllers[s], bays[s])
	}
	st := engine.Stats()
	fmt.Printf("\nawareness: %d events published, %d deliveries, %d filtered below threshold\n",
		st.Published, st.Delivered, st.Filtered)
	fmt.Println("every controller saw their own sector fully and the neighbour peripherally —")
	fmt.Println("the flight progress board as a publicly available workspace")
	return nil
}
